// Package stats provides the statistical helpers the paper's analyses rely
// on: empirical CDFs, percentiles, medians, and <city,AS> probe-group
// aggregation (the paper reports all CDFs, percentages, and percentiles over
// probe groups rather than individual probes, §3.1).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of the values using
// linear interpolation between closest ranks. It returns NaN for an empty
// input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of the values.
func Median(values []float64) float64 { return Percentile(values, 50) }

// Mean returns the arithmetic mean, or NaN for an empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// FractionBelow returns the fraction of values strictly below the threshold.
// It returns 0 for an empty input.
func FractionBelow(values []float64, threshold float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v < threshold {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// FractionAbove returns the fraction of values strictly above the threshold.
func FractionAbove(values []float64, threshold float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF over a copy of the values.
func NewCDF(values []float64) *CDF {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	return Percentile(c.sorted, q*100)
}

// Points samples the CDF at n evenly spaced x positions between the min and
// max sample, suitable for plotting. It returns nil when there are no
// samples or n < 2.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Point is an (x, y) sample of a distribution curve.
type Point struct{ X, Y float64 }

// GroupMedians aggregates per-member values into group medians: the paper's
// <city,AS> probe-group statistic. Keys identify groups; each group's
// representative value is the median of its members' values. The result maps
// group key to median.
func GroupMedians(keys []string, values []float64) map[string]float64 {
	if len(keys) != len(values) {
		panic("stats: GroupMedians called with mismatched slice lengths")
	}
	grouped := make(map[string][]float64)
	for i, k := range keys {
		grouped[k] = append(grouped[k], values[i])
	}
	out := make(map[string]float64, len(grouped))
	for k, vs := range grouped {
		out[k] = Median(vs)
	}
	return out
}

// Values extracts the values of a map in key-sorted order, giving
// deterministic downstream statistics.
func Values(m map[string]float64) []float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]float64, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Table renders a simple aligned text table: a header row followed by data
// rows. It is used by the experiment harness to print paper-style tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Fmt1 formats a float with one decimal place; NaN renders as "-".
func Fmt1(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

// FmtPct formats a fraction as a percentage with one decimal place.
func FmtPct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}
