// Package siteopt implements an AnyOpt-style baseline (Zhang et al.,
// SIGCOMM'21, discussed in the paper's §2.2): choose which subset of a
// network's sites should announce a global anycast prefix so that client
// latency is minimised. AnyOpt predicts catchments from pairwise BGP
// experiments; this simulator can afford the experiments directly, so the
// optimizer greedily grows the announcing set, re-measuring the true
// catchment after each candidate addition — the paper's criticism (pairwise
// BGP experiments are operationally expensive) translates here into the
// optimizer's measured announcement count.
package siteopt

import (
	"fmt"
	"sort"

	"anysim/internal/atlas"
	"anysim/internal/bgp"
	"anysim/internal/cdn"
	"anysim/internal/stats"
)

// Result is a greedy site-subset optimisation outcome.
type Result struct {
	// Order lists site IDs in the order the greedy pass added them.
	Order []string
	// MeanMsAt[i] is the mean group latency with Order[:i+1] announcing.
	MeanMsAt []float64
	// Best is the prefix of Order achieving the minimum mean latency.
	Best []string
	// BestMeanMs is that minimum.
	BestMeanMs float64
	// Announcements counts BGP announcements performed — the operational
	// cost AnyOpt's experiments impose on a real network.
	Announcements int
}

// Config tunes the optimisation.
type Config struct {
	// MaxSites caps the announcing set (0 = all sites).
	MaxSites int
	// Patience stops the greedy pass after this many consecutive
	// non-improving additions (default 3).
	Patience int
}

// Optimize greedily selects announcing sites for the deployment's single
// (global) region to minimise mean probe-group latency. It leaves the best
// configuration announced.
func Optimize(e *bgp.Engine, m *atlas.Measurer, dep *cdn.Deployment, probes []*atlas.Probe, cfg Config) (*Result, error) {
	if len(dep.Regions) != 1 {
		return nil, fmt.Errorf("siteopt: %s has %d regions; the optimizer operates a global anycast network", dep.Name, len(dep.Regions))
	}
	if cfg.MaxSites <= 0 || cfg.MaxSites > len(dep.Sites) {
		cfg.MaxSites = len(dep.Sites)
	}
	if cfg.Patience <= 0 {
		cfg.Patience = 3
	}
	remaining := map[string]cdn.Site{}
	for _, s := range dep.Sites {
		remaining[s.ID] = s
	}

	res := &Result{BestMeanMs: -1}
	var chosen []cdn.Site
	stale := 0
	for len(chosen) < cfg.MaxSites && len(remaining) > 0 && stale < cfg.Patience {
		// Try each remaining site appended to the chosen set; keep the one
		// with the lowest measured mean latency.
		ids := make([]string, 0, len(remaining))
		for id := range remaining {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		bestID, bestMean := "", -1.0
		for _, id := range ids {
			mean, err := measureSet(e, m, dep, append(chosen, remaining[id]), probes)
			if err != nil {
				return nil, err
			}
			res.Announcements++
			if bestMean < 0 || mean < bestMean {
				bestID, bestMean = id, mean
			}
		}
		chosen = append(chosen, remaining[bestID])
		delete(remaining, bestID)
		res.Order = append(res.Order, bestID)
		res.MeanMsAt = append(res.MeanMsAt, bestMean)
		if res.BestMeanMs < 0 || bestMean < res.BestMeanMs {
			res.BestMeanMs = bestMean
			res.Best = append([]string(nil), res.Order...)
			stale = 0
		} else {
			stale++
		}
	}

	// Leave the best configuration announced.
	bestSites := make([]cdn.Site, 0, len(res.Best))
	bySiteID := map[string]cdn.Site{}
	for _, s := range dep.Sites {
		bySiteID[s.ID] = s
	}
	for _, id := range res.Best {
		bestSites = append(bestSites, bySiteID[id])
	}
	if _, err := measureSet(e, m, dep, bestSites, probes); err != nil {
		return nil, err
	}
	res.Announcements++
	return res, nil
}

// measureSet announces the deployment's global prefix from the given sites
// and returns the mean probe-group latency.
func measureSet(e *bgp.Engine, m *atlas.Measurer, dep *cdn.Deployment, sites []cdn.Site, probes []*atlas.Probe) (float64, error) {
	anns := make([]bgp.SiteAnnouncement, 0, len(sites))
	for _, s := range sites {
		anns = append(anns, bgp.SiteAnnouncement{Origin: dep.ASN, Site: s.ID, City: s.City})
	}
	p := dep.Regions[0].Prefix
	if err := e.Announce(p, anns); err != nil {
		return 0, err
	}
	groupVals := map[string][]float64{}
	for _, probe := range probes {
		fwd, ok := e.Lookup(p, probe.ASN, probe.City)
		if !ok {
			continue
		}
		groupVals[probe.GroupKey()] = append(groupVals[probe.GroupKey()], m.RTT(probe, fwd))
	}
	keys := make([]string, 0, len(groupVals))
	for k := range groupVals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]float64, 0, len(keys))
	for _, k := range keys {
		vals = append(vals, stats.Median(groupVals[k]))
	}
	return stats.Mean(vals), nil
}
