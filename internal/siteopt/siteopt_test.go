package siteopt

import (
	"testing"

	"anysim/internal/worldgen"
)

var (
	sharedWorld  *worldgen.World
	sharedResult *Result
)

func fixtures(t *testing.T) (*worldgen.World, *Result) {
	t.Helper()
	if sharedWorld == nil {
		w, err := worldgen.Small(31)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimize(w.Engine, w.Measurer, w.Tangled.Global, w.Platform.Retained(), Config{})
		if err != nil {
			t.Fatal(err)
		}
		sharedWorld, sharedResult = w, res
	}
	return sharedWorld, sharedResult
}

func TestOptimizeStructure(t *testing.T) {
	_, res := fixtures(t)
	if len(res.Order) == 0 || len(res.Order) != len(res.MeanMsAt) {
		t.Fatalf("order/means shape: %d vs %d", len(res.Order), len(res.MeanMsAt))
	}
	seen := map[string]bool{}
	for _, id := range res.Order {
		if seen[id] {
			t.Errorf("site %s selected twice", id)
		}
		seen[id] = true
	}
	if len(res.Best) == 0 || len(res.Best) > len(res.Order) {
		t.Fatalf("best set size %d out of range", len(res.Best))
	}
	// Best must be a prefix of Order.
	for i, id := range res.Best {
		if res.Order[i] != id {
			t.Errorf("best[%d] = %s, want order prefix %s", i, id, res.Order[i])
		}
	}
	if res.BestMeanMs <= 0 || res.BestMeanMs > 300 {
		t.Errorf("implausible best mean %.1f", res.BestMeanMs)
	}
}

func TestGreedyImprovesOverSingleSite(t *testing.T) {
	_, res := fixtures(t)
	if len(res.MeanMsAt) < 2 {
		t.Skip("greedy stopped after one site")
	}
	if res.BestMeanMs >= res.MeanMsAt[0] {
		t.Errorf("best mean %.1f not better than single-site %.1f", res.BestMeanMs, res.MeanMsAt[0])
	}
}

func TestAnnouncementCostIsQuadraticish(t *testing.T) {
	// The paper's criticism of AnyOpt: the experiments are expensive. The
	// greedy pass costs O(k * n) announcements; with 12 sites that is
	// dozens, not a handful.
	_, res := fixtures(t)
	if res.Announcements < len(res.Order)*2 {
		t.Errorf("announcement count %d suspiciously low for %d rounds", res.Announcements, len(res.Order))
	}
}

func TestOptimizeRespectsMaxSites(t *testing.T) {
	w, _ := fixtures(t)
	res, err := Optimize(w.Engine, w.Measurer, w.Tangled.Global, w.Platform.Retained(), Config{MaxSites: 3, Patience: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) > 3 {
		t.Errorf("selected %d sites, cap was 3", len(res.Order))
	}
}

func TestOptimizeRejectsRegionalDeployment(t *testing.T) {
	w, _ := fixtures(t)
	if _, err := Optimize(w.Engine, w.Measurer, w.Imperva.IM6, w.Platform.Retained(), Config{}); err == nil {
		t.Error("Optimize accepted a multi-region deployment")
	}
}
