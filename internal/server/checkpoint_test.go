package server

import (
	"fmt"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"anysim/internal/worldgen"
)

// TestCheckpointRestoreByteIdentical is the checkpoint contract: run A
// ingests events, checkpoints mid-stream, and keeps going; run B starts
// from the checkpoint file and replays the same tail. B's metrics
// snapshot and every query response must be byte-identical to A's — the
// restored server is indistinguishable from one that never stopped.
func TestCheckpointRestoreByteIdentical(t *testing.T) {
	const seed = 11
	a := testServer(t, seed)
	ha := a.Handler()
	site := busiestSite(t, a)

	head := fmt.Sprintf("at 1 site-down %s\nat 2 flash-begin APAC 2.5\n", site)
	if _, err := a.Ingest(strings.NewReader(head)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp.json")
	if _, err := a.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	// A's view at checkpoint time, for the restore-only comparison. The
	// snapshot is taken after the same two queries B will make before its
	// own snapshot: per-endpoint status counters register on first use, so
	// the wall section's names reflect query history, and the comparison
	// must hold request histories equal to be meaningful.
	capAtCp := do(t, ha, "GET", "/catchment", "").Body.String()
	var statusAtCp statusView
	decode(t, do(t, ha, "GET", "/status", ""), &statusAtCp)
	snapAtCp := string(a.w.Config.Metrics.AppendSnapshot(nil))

	// A keeps going: restore the site, advance a bucket.
	tail := fmt.Sprintf("at 3 site-up %s\n", site)
	if _, err := a.Ingest(strings.NewReader(tail)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AdvanceTo(6); err != nil {
		t.Fatal(err)
	}

	// B: fresh world from the same seed, restored from the file.
	cp, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	wb := testWorld(t, seed)
	b, err := New(Config{World: wb, Dep: wb.Imperva.IM6, Restore: cp})
	if err != nil {
		t.Fatal(err)
	}
	hb := b.Handler()

	// Before replaying anything, B answers exactly as A did at checkpoint
	// time — catchment and status byte for byte, metrics snapshot included.
	if got := do(t, hb, "GET", "/catchment", "").Body.String(); got != capAtCp {
		t.Error("/catchment after restore differs from checkpoint-time response")
	}
	// /status matches except oldest_tick: B's history ring legitimately
	// starts at the restore point, so diffs across the gap are refused
	// (checked below) rather than pretended.
	var statusB statusView
	decode(t, do(t, hb, "GET", "/status", ""), &statusB)
	statusB.OldestTick = statusAtCp.OldestTick
	if !reflect.DeepEqual(statusB, statusAtCp) {
		t.Errorf("/status after restore differs:\n got %+v\nwant %+v", statusB, statusAtCp)
	}
	if got := string(wb.Config.Metrics.AppendSnapshot(nil)); got != snapAtCp {
		t.Errorf("metrics snapshot after restore differs from the checkpointed one:\n got %s\nwant %s", got, snapAtCp)
	}
	if got := b.Current().Flash; len(got) != 1 {
		t.Errorf("restored flash state = %v, want the APAC crowd", got)
	}

	// Replay the tail on B; every response must match A's.
	if _, err := b.Ingest(strings.NewReader(tail)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AdvanceTo(6); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{"/catchment", "/load", "/metrics"} {
		ra, rb := do(t, ha, "GET", ep, ""), do(t, hb, "GET", ep, "")
		if ra.Code != http.StatusOK || rb.Code != http.StatusOK {
			t.Fatalf("GET %s = %d / %d", ep, ra.Code, rb.Code)
		}
		if ra.Body.String() != rb.Body.String() {
			t.Errorf("GET %s diverges after restore+replay:\n got %s\nwant %s", ep, rb.Body, ra.Body)
		}
	}
	var sa, sb statusView
	decode(t, do(t, ha, "GET", "/status", ""), &sa)
	decode(t, do(t, hb, "GET", "/status", ""), &sb)
	sb.OldestTick = sa.OldestTick
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("/status diverges after restore+replay:\n got %+v\nwant %+v", sb, sa)
	}

	// B's history starts at the restore; a diff across the gap is refused
	// with 410, not answered wrongly.
	if rec := do(t, hb, "GET", "/diff?since=0", ""); rec.Code != http.StatusGone {
		t.Errorf("diff across the restore gap = %d, want 410", rec.Code)
	}
}

// TestRestoreRefusesMismatch pins every compatibility check: wrong seed,
// tampered world hash, wrong schema, wrong deployment.
func TestRestoreRefusesMismatch(t *testing.T) {
	const seed = 11
	a := testServer(t, seed)
	path := filepath.Join(t.TempDir(), "cp.json")
	if _, err := a.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	refuse := func(name string, w *worldgen.World, cp *Checkpoint, dep string, wantSub string) {
		t.Helper()
		d := w.Imperva.IM6
		if dep == "eg3" {
			d = w.Edgio.EG3
		}
		_, err := New(Config{World: w, Dep: d, Restore: cp})
		if err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: restore error = %v, want mention of %q", name, err, wantSub)
		}
	}

	refuse("seed mismatch", testWorld(t, seed+1), cp, "im6", "seed")

	wb := testWorld(t, seed)
	tampered := *cp
	tampered.Header.World = "0000000000000000"
	refuse("world-hash mismatch", wb, &tampered, "im6", "world hash")

	tampered = *cp
	tampered.Header.Schema++
	refuse("schema mismatch", wb, &tampered, "im6", "schema")

	refuse("deployment mismatch", wb, cp, "eg3", "deployment")

	// A checkpoint taken under a policy cannot restore onto a world
	// without one — and the refusal names the policy side, rendering the
	// missing hash as "(none)", not the folded world hash.
	tampered = *cp
	tampered.Header.Policy = "deadbeefdeadbeef"
	refuse("policy mismatch", wb, &tampered, "im6", "policy")
	refuse("policy mismatch names none", wb, &tampered, "im6", "(none)")

	tampered = *cp
	tampered.Caps = map[string]float64{"no-such-site": 1}
	refuse("unknown site capacity", wb, &tampered, "im6", "unknown site")

	// The pristine checkpoint still restores onto the pristine world.
	if _, err := New(Config{World: wb, Dep: wb.Imperva.IM6, Restore: cp}); err != nil {
		t.Errorf("valid restore refused: %v", err)
	}
}
