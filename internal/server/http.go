package server

// The live query API. Every GET reads one immutable published State (an
// engine fork), so responses are internally consistent and never observe a
// half-applied event; POST /events and /advance go through the serialized
// ingest path. Responses are JSON; for a fixed world, event history, and
// tick, query bodies are deterministic (byte-identical across runs), which
// the serve smoke test and the checkpoint round-trip test rely on.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"anysim/internal/dynamics"
	"anysim/internal/glass"
	"anysim/internal/obs"
	"anysim/internal/obs/ts"
)

// Handler returns the HTTP API:
//
//	GET  /status             clock, deployment, and world identity
//	GET  /catchment          full captured catchment (glass.CatchmentSet)
//	GET  /load               per-site load for the current time bucket
//	GET  /explain?group=K    one probe group's catchment, hop by hop
//	GET  /diff?since=T       catchment moves since the state at tick T
//	GET  /timeseries         recorded series index; ?series=N[&from=&to=&max=] for points
//	GET  /alerts             active SLO alerts and the transition history
//	GET  /metrics            obs registry snapshot (JSON)
//	GET  /metrics.prom       obs registry, Prometheus text exposition
//	GET  /healthz            liveness, identity hashes, ingest lag, firing alerts
//	GET  /watch              SSE stream of ingest/advance deltas and alert frames
//	POST /events             ingest a dynamics-DSL / JSONL event stream
//	POST /advance?to=T       advance the virtual clock
//	POST /checkpoint[?path=] write a checkpoint file
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, name string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrumented(name, h))
	}
	handle("GET /status", "status", s.handleStatus)
	handle("GET /catchment", "catchment", s.handleCatchment)
	handle("GET /load", "load", s.handleLoad)
	handle("GET /explain", "explain", s.handleExplain)
	handle("GET /diff", "diff", s.handleDiff)
	handle("GET /timeseries", "timeseries", s.handleTimeseries)
	handle("GET /alerts", "alerts", s.handleAlerts)
	handle("GET /metrics", "metrics", s.handleMetrics)
	handle("GET /metrics.prom", "metrics_prom", s.handleMetricsProm)
	handle("GET /healthz", "healthz", s.handleHealthz)
	handle("POST /events", "events", s.handleEvents)
	handle("POST /advance", "advance", s.handleAdvance)
	handle("POST /checkpoint", "checkpoint", s.handleCheckpoint)
	// /watch is long-lived: it gets the status-code counter but not the
	// latency histogram (a stream's duration is how long the client stayed,
	// not how fast the server answered).
	mux.HandleFunc("GET /watch", func(w http.ResponseWriter, r *http.Request) {
		s.sobs.queries.Inc()
		s.w.Config.Metrics.WallCounter("serve.http.watch.requests").Inc()
		s.handleWatch(w, r)
	})
	return mux
}

// statusRecorder captures the response status code for per-endpoint
// counters. It forwards Flush so SSE streaming survives the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrumented counts queries, wall latency (aggregate and per endpoint),
// and response status codes (all wall-class metrics; free unless EnableWall
// is on).
func (s *Server) instrumented(name string, h http.HandlerFunc) http.HandlerFunc {
	reg := s.w.Config.Metrics
	lat := reg.WallHistogram("serve.http."+name+".ns", obs.Pow2Bounds(34))
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		ns := time.Since(t0).Nanoseconds()
		s.sobs.queries.Inc()
		s.sobs.queryNs.Observe(ns)
		lat.Observe(ns)
		reg.WallCounter("serve.http." + name + ".status." + strconv.Itoa(rec.code)).Inc()
	}
}

// writeJSON encodes v stably (MarshalIndent via glass.JSON) with a
// trailing newline.
func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := glass.JSON(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	// Live state: a cached /status or /load answer is a stale twin.
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(code)
	io.WriteString(w, body)
}

// apiError is the error body of every non-2xx JSON response.
type apiError struct {
	Error string `json:"error"`
	// Line is set for event-stream decode errors.
	Line int `json:"line,omitempty"`
	// Applied reports events that took effect before the failure.
	Applied []ApplyResult `json:"applied,omitempty"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// statusView is the GET /status body.
type statusView struct {
	Dep        string             `json:"dep"`
	Seed       int64              `json:"seed"`
	World      string             `json:"world"`
	Seq        int64              `json:"seq"`
	Tick       int64              `json:"tick"`
	Bucket     int                `json:"bucket"`
	Events     int64              `json:"events"`
	OldestTick int64              `json:"oldest_tick"`
	Prefixes   int                `json:"prefixes"`
	Groups     int                `json:"groups"`
	Flash      map[string]float64 `json:"flash,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.Current()
	writeJSON(w, http.StatusOK, statusView{
		Dep:        s.dep.Name,
		Seed:       s.w.Config.Seed,
		World:      s.w.Config.Hash(),
		Seq:        st.Seq,
		Tick:       st.Tick,
		Bucket:     st.Bucket,
		Events:     s.EventsApplied(),
		OldestTick: s.OldestTick(),
		Prefixes:   len(st.Engine.Prefixes()),
		Groups:     len(s.model.Groups),
		Flash:      flashView(st),
	})
}

func (s *Server) handleCatchment(w http.ResponseWriter, r *http.Request) {
	set, err := s.Current().Catchment()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, set)
}

// siteView is one site's row in the GET /load body.
type siteView struct {
	Site        string  `json:"site"`
	City        string  `json:"city"`
	Tier        string  `json:"tier"`
	Capacity    float64 `json:"capacity"`
	Demand      float64 `json:"demand"`
	Utilization float64 `json:"utilization"`
	Groups      int     `json:"groups"`
	Overloaded  bool    `json:"overloaded,omitempty"`
}

// loadView is the GET /load body.
type loadView struct {
	Seq            int64              `json:"seq"`
	Tick           int64              `json:"tick"`
	Bucket         int                `json:"bucket"`
	MaxUtilization float64            `json:"max_utilization"`
	Unserved       float64            `json:"unserved"`
	Flash          map[string]float64 `json:"flash,omitempty"`
	Sites          []siteView         `json:"sites"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	st := s.Current()
	view := loadView{
		Seq:            st.Seq,
		Tick:           st.Tick,
		Bucket:         st.Bucket,
		MaxUtilization: st.Load.MaxUtilization(),
		Unserved:       st.Load.Unserved,
		Flash:          flashView(st),
	}
	for _, sl := range st.Load.Sites {
		view.Sites = append(view.Sites, siteView{
			Site:        sl.Site,
			City:        sl.City,
			Tier:        sl.Tier.String(),
			Capacity:    sl.Capacity,
			Demand:      sl.Demand,
			Utilization: sl.Utilization(),
			Groups:      sl.Groups,
			Overloaded:  sl.Overloaded(),
		})
	}
	writeJSON(w, http.StatusOK, view)
}

func flashView(st *State) map[string]float64 {
	if len(st.Flash) == 0 {
		return nil
	}
	out := make(map[string]float64, len(st.Flash))
	for a, f := range st.Flash {
		out[a.String()] = f
	}
	return out
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	group := r.URL.Query().Get("group")
	if group == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ?group=CITY|ASN"))
		return
	}
	st := s.Current()
	ce, err := glass.ExplainCatchment(st.Engine, s.dep, st.measurer(), s.w.Platform.Retained(), group)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, ce)
}

// diffView is the GET /diff body: the classified moves between the
// retained state at the requested tick and the current state.
type diffView struct {
	Since    int64            `json:"since"`
	BaseSeq  int64            `json:"base_seq"`
	BaseTick int64            `json:"base_tick"`
	Seq      int64            `json:"seq"`
	Tick     int64            `json:"tick"`
	Report   glass.DiffReport `json:"report"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	since, err := strconv.ParseInt(r.URL.Query().Get("since"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad ?since=: %w", err))
		return
	}
	base := s.StateAt(since)
	if base == nil {
		writeError(w, http.StatusGone,
			fmt.Errorf("history does not reach tick %d (oldest retained tick is %d)", since, s.OldestTick()))
		return
	}
	cur := s.Current()
	before, err := base.Catchment()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	after, err := cur.Catchment()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	rep, err := glass.Diff(before, after)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, diffView{
		Since:    since,
		BaseSeq:  base.Seq,
		BaseTick: base.Tick,
		Seq:      cur.Seq,
		Tick:     cur.Tick,
		Report:   rep,
	})
}

// timeseriesIndex is the GET /timeseries body without ?series=.
type timeseriesIndex struct {
	Schema   int      `json:"schema"`
	Capacity int      `json:"capacity"`
	Series   []string `json:"series"`
}

// handleTimeseries is GET /timeseries: without ?series= it lists the
// recorded series; with it, it returns the series' points as [tick, value]
// pairs, optionally bounded by ?from=/?to= (ticks, inclusive) and
// downsampled to at most ?max= points. Point responses are hand-encoded
// with the obs float conventions so a utilization of +Inf cannot break the
// response, and a double read of an idle server is byte-identical.
func (s *Server) handleTimeseries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("series")
	if name == "" {
		writeJSON(w, http.StatusOK, timeseriesIndex{
			Schema:   ts.SchemaVersion,
			Capacity: s.tsdb.Capacity(),
			Series:   s.tsdb.Names(),
		})
		return
	}
	from, to, max := int64(0), int64(1)<<62, 0
	var err error
	if v := q.Get("from"); v != "" {
		if from, err = strconv.ParseInt(v, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad ?from=: %w", err))
			return
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = strconv.ParseInt(v, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad ?to=: %w", err))
			return
		}
	}
	if v := q.Get("max"); v != "" {
		if max, err = strconv.Atoi(v); err != nil || max < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad ?max=: want a non-negative integer"))
			return
		}
	}
	pts, ok := s.tsdb.Query(name, from, to, max)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no series %q (GET /timeseries lists them)", name))
		return
	}
	b := []byte(`{"series":`)
	b = obs.AppendJSONString(b, name)
	b = append(b, `,"points":[`...)
	for i, p := range pts {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '[')
		b = strconv.AppendInt(b, p.Tick, 10)
		b = append(b, ',')
		b = obs.AppendFloat(b, p.V)
		b = append(b, ']')
	}
	b = append(b, "]}\n"...)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Cache-Control", "no-store")
	w.Write(b)
}

// handleAlerts is GET /alerts: the active (pending/firing) alerts in rule
// order plus the retained transition history, hand-encoded like the
// timeseries responses.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	b := append([]byte(nil), `{"firing":`...)
	b = strconv.AppendInt(b, int64(s.tsdb.FiringCount()), 10)
	b = append(b, `,"active":[`...)
	for i, a := range s.tsdb.ActiveAlerts() {
		if i > 0 {
			b = append(b, ',')
		}
		b = a.AppendJSON(b)
	}
	b = append(b, `],"history":[`...)
	for i, tr := range s.tsdb.History() {
		if i > 0 {
			b = append(b, ',')
		}
		b = tr.AppendJSON(b)
	}
	b = append(b, "]}\n"...)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Cache-Control", "no-store")
	w.Write(b)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Cache-Control", "no-store")
	s.w.Config.Metrics.WriteSnapshot(w)
}

// eventsView is the POST /events success body.
type eventsView struct {
	Applied []ApplyResult `json:"applied"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	applied, err := s.Ingest(r.Body)
	if err != nil {
		code := http.StatusUnprocessableEntity
		var derr *dynamics.DecodeError
		line := 0
		if errors.As(err, &derr) {
			code = http.StatusBadRequest
			line = derr.Line
		}
		writeJSON(w, code, apiError{Error: err.Error(), Line: line, Applied: applied})
		return
	}
	writeJSON(w, http.StatusOK, eventsView{Applied: applied})
}

// Ingest decodes an event stream (dynamics DSL or JSONL, see
// dynamics.NewDecoder) and applies each event in order. On error it
// returns the results of the events already applied — an event stream is
// applied up to, not including, its first bad line.
func (s *Server) Ingest(r io.Reader) ([]ApplyResult, error) {
	d := dynamics.NewDecoder(r)
	var applied []ApplyResult
	for {
		ev, err := d.Next()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		res, err := s.Apply(ev)
		if err != nil {
			return applied, err
		}
		applied = append(applied, res)
	}
}

// advanceView is the POST /advance body.
type advanceView struct {
	Seq    int64 `json:"seq"`
	Tick   int64 `json:"tick"`
	Bucket int   `json:"bucket"`
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	to, err := strconv.ParseInt(r.URL.Query().Get("to"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad ?to=: %w", err))
		return
	}
	st, err := s.AdvanceTo(to)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, advanceView{Seq: st.Seq, Tick: st.Tick, Bucket: st.Bucket})
}

// checkpointView is the POST /checkpoint body.
type checkpointView struct {
	Path   string `json:"path"`
	Bytes  int    `json:"bytes"`
	Tick   int64  `json:"tick"`
	Events int64  `json:"events"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Query().Get("path")
	if path == "" {
		path = s.cfg.CheckpointPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("no ?path= given and the server has no default checkpoint path (-checkpoint)"))
		return
	}
	n, err := s.WriteCheckpoint(path)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, checkpointView{Path: path, Bytes: n, Tick: s.Current().Tick, Events: s.EventsApplied()})
}
