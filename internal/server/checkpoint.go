package server

// Checkpoint/restore. The routing engine is a deterministic function of
// (topology, announcement sets), so a checkpoint does not serialize RIBs:
// it records the world's compatibility tag, the clock, the link states,
// the active flash crowds, every prefix's announcement set plus failover
// hints (bgp.PrefixState), the derived site capacities, and the metrics
// snapshot. Restore rebuilds the identical world from the seed and
// replays that state; the engine reconverges to bit-identical RIBs, so a
// /catchment response after restore is byte-for-byte the one the
// checkpointed server would have produced.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"anysim/internal/bgp"
	"anysim/internal/dynamics"
	"anysim/internal/geo"
	"anysim/internal/obs"
	"anysim/internal/traffic"
)

// Checkpoint is the serialized resident state of a server.
type Checkpoint struct {
	// Header tags the checkpoint with the trace schema version, seed, and
	// world-config hash; restore refuses a world that does not match.
	Header obs.TraceHeader `json:"header"`
	Dep    string          `json:"dep"`
	Tick   int64           `json:"tick"`
	Seq    int64           `json:"seq"`
	Events int64           `json:"events"`
	// DisabledLinks are topology link indices currently failed.
	DisabledLinks []int `json:"disabled_links,omitempty"`
	// Flash maps paper-area names to active flash-crowd factors.
	Flash map[string]float64 `json:"flash,omitempty"`
	// Routing is the full announcement state of the engine (all
	// deployments, not only the served one — link events perturb them all).
	Routing []bgp.PrefixState `json:"routing"`
	// Caps are the per-site capacities derived at first start.
	Caps map[string]float64 `json:"caps"`
	// Metrics is the registry snapshot (absent when metrics are off).
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// Checkpoint captures the server's resident state. It runs on the ingest
// path (serialized with Apply), so the captured state is consistent.
func (s *Server) Checkpoint() *Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	hdr := obs.NewTraceHeader(s.w.Config.Seed, s.w.Config.Hash())
	hdr.Policy = s.w.Config.PolicyHash()
	cp := &Checkpoint{
		Header:        hdr,
		Dep:           s.dep.Name,
		Tick:          s.tick,
		Seq:           s.seq,
		Events:        s.events,
		DisabledLinks: s.w.Topo.DisabledLinks(),
		Routing:       s.w.Engine.ExportState(),
		Caps:          make(map[string]float64, len(s.eval.Caps)),
	}
	for site, c := range s.eval.Caps {
		cp.Caps[site] = c
	}
	if flash := s.runner.ActiveFlash(); len(flash) > 0 {
		cp.Flash = make(map[string]float64, len(flash))
		for a, f := range flash {
			cp.Flash[a.String()] = f
		}
	}
	if reg := s.w.Config.Metrics; reg != nil {
		cp.Metrics = reg.AppendSnapshot(nil)
	}
	s.emitTrace("checkpoint", obs.Int("prefixes", int64(len(cp.Routing))))
	return cp
}

// WriteCheckpoint captures the server's state and writes it atomically
// (temp file + rename) to path, returning the byte count.
func (s *Server) WriteCheckpoint(path string) (int, error) {
	cp := s.Checkpoint()
	data, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return 0, fmt.Errorf("server: encode checkpoint: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".checkpoint-*")
	if err != nil {
		return 0, fmt.Errorf("server: write checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("server: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("server: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("server: write checkpoint: %w", err)
	}
	return len(data), nil
}

// ReadCheckpoint loads a checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("server: read checkpoint %s: %w", path, err)
	}
	return &cp, nil
}

// Compatible checks a checkpoint against a world's compatibility tag
// (seed, world hash, policy hash) and a deployment, without restoring
// anything.
func (cp *Checkpoint) Compatible(seed int64, worldHash, policyHash, dep string) error {
	want := obs.NewTraceHeader(seed, worldHash)
	want.Policy = policyHash
	h := cp.Header
	if h.Trace != want.Trace {
		return fmt.Errorf("server: not an anysim checkpoint (header %q)", h.Trace)
	}
	if h.Schema != want.Schema {
		return fmt.Errorf("server: checkpoint schema %d, this build reads %d", h.Schema, want.Schema)
	}
	if h.Seed != want.Seed {
		return fmt.Errorf("server: checkpoint is from seed %d, this world is seed %d", h.Seed, want.Seed)
	}
	// Policy before world: the world hash folds the policy hash in, and a
	// policy mismatch should name the policy, not a generic world hash.
	if h.Policy != want.Policy {
		return fmt.Errorf("server: checkpoint policy %s does not match this world's policy %s; restore under the original -policy file",
			orNone(h.Policy), orNone(want.Policy))
	}
	if h.World != want.World {
		return fmt.Errorf("server: checkpoint world hash %s does not match this world (%s); rebuild with the original configuration", h.World, want.World)
	}
	if cp.Dep != dep {
		return fmt.Errorf("server: checkpoint is for deployment %s, serving %s", cp.Dep, dep)
	}
	return nil
}

// restore reinstates a checkpoint onto the freshly built (and verified
// compatible) world: link states first, then the full announcement replay,
// then flash crowds and the clock. The caller reinstates the metrics
// snapshot after the initial publish.
func (s *Server) restore(cp *Checkpoint) error {
	if err := cp.Compatible(s.w.Config.Seed, s.w.Config.Hash(), s.w.Config.PolicyHash(), s.dep.Name); err != nil {
		return err
	}
	for site := range cp.Caps {
		if _, ok := s.dep.SiteByID(site); !ok {
			return fmt.Errorf("server: checkpoint capacity for unknown site %q", site)
		}
	}
	tp := s.w.Topo
	nLinks := len(tp.Links())
	for _, li := range cp.DisabledLinks {
		if li < 0 || li >= nLinks {
			return fmt.Errorf("server: checkpoint disables link %d, topology has %d", li, nLinks)
		}
		if err := tp.SetLinkEnabled(li, false); err != nil {
			return fmt.Errorf("server: restore link state: %w", err)
		}
	}
	if err := s.w.Engine.RestoreState(cp.Routing); err != nil {
		return fmt.Errorf("server: restore routing: %w", err)
	}
	s.eval = traffic.NewEvaluatorWithCaps(s.w.Engine, s.dep, s.model, s.cfg.Capacity, cp.Caps)
	s.runner = dynamics.NewRunner(s.w.Engine, s.dep)
	s.runner.Measurer = s.w.Measurer
	s.runner.Probes = s.w.Platform.Retained()
	areas := make([]string, 0, len(cp.Flash))
	for a := range cp.Flash {
		areas = append(areas, a)
	}
	sort.Strings(areas)
	for _, name := range areas {
		a, err := geo.ParseArea(name)
		if err != nil {
			return fmt.Errorf("server: restore flash crowd: %w", err)
		}
		if err := s.runner.Apply(dynamics.Event{Kind: dynamics.FlashBegin, Area: a, Factor: cp.Flash[name]}); err != nil {
			return fmt.Errorf("server: restore flash crowd: %w", err)
		}
	}
	s.tick = cp.Tick
	s.events = cp.Events
	// The initial publish bumps seq back to exactly the checkpoint's.
	s.seq = cp.Seq - 1
	return nil
}

// orNone renders an empty policy hash readably in error messages.
func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}
