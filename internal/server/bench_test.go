package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anysim/internal/dynamics"
)

// BenchmarkServeIngestEvent measures the resident server's full ingest
// path — incremental reconvergence, load re-evaluation, and state
// publication — by flapping the busiest site on the small world. The
// custom query-ns/op column reports the latency of a GET /load served
// from the published snapshot, the number a dashboard polling the twin
// would see.
func BenchmarkServeIngestEvent(b *testing.B) {
	s := testServer(b, 7)
	var site string
	var bestGroups int
	for _, sl := range s.Current().Load.Sites {
		if sl.Groups > bestGroups {
			site, bestGroups = sl.Site, sl.Groups
		}
	}
	down := dynamics.Event{Kind: dynamics.SiteDown, Site: site}
	up := dynamics.Event{Kind: dynamics.SiteUp, Site: site}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := down
		if i%2 == 1 {
			ev = up
		}
		if _, err := s.Apply(ev); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	// Query latency against the final published state, via the real
	// handler. The first request pays the memoized capture; the sampled
	// /load reads measure the steady state.
	h := s.Handler()
	get := func(target string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("GET %s = %d", target, rec.Code)
		}
	}
	get("/load")
	const queries = 64
	t0 := time.Now()
	for i := 0; i < queries; i++ {
		get("/load")
	}
	b.ReportMetric(float64(time.Since(t0).Nanoseconds())/queries, "query-ns/op")
}

// BenchmarkServeIngestStream measures ingest through the event decoder —
// the POST /events path — amortized over a 16-event flap stream.
func BenchmarkServeIngestStream(b *testing.B) {
	s := testServer(b, 7)
	var site string
	var bestGroups int
	for _, sl := range s.Current().Load.Sites {
		if sl.Groups > bestGroups {
			site, bestGroups = sl.Site, sl.Groups
		}
	}
	var sb strings.Builder
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&sb, "at 0 site-down %s\nat 0 site-up %s\n", site, site)
	}
	stream := sb.String()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(strings.NewReader(stream)); err != nil {
			b.Fatal(err)
		}
	}
}
