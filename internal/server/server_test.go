package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"anysim/internal/dynamics"
	"anysim/internal/glass"
	"anysim/internal/obs"
	"anysim/internal/worldgen"
)

// testWorld builds the small world with provenance and a metrics registry,
// the shape `anysim -small serve` runs.
func testWorld(t testing.TB, seed int64) *worldgen.World {
	t.Helper()
	cfg := worldgen.SmallConfig(seed)
	cfg.Provenance = true
	cfg.Metrics = obs.NewRegistry()
	w, err := worldgen.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// testServer assembles a server over the small world's IM6 deployment.
func testServer(t testing.TB, seed int64) *Server {
	t.Helper()
	w := testWorld(t, seed)
	s, err := New(Config{World: w, Dep: w.Imperva.IM6})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// busiestSite returns the deployment site serving the most probe groups at
// the current state — withdrawing it is guaranteed to move catchments.
func busiestSite(t *testing.T, s *Server) string {
	t.Helper()
	best, bestGroups := "", 0
	for _, sl := range s.Current().Load.Sites {
		if sl.Groups > bestGroups {
			best, bestGroups = sl.Site, sl.Groups
		}
	}
	if best == "" {
		t.Fatal("no site serves any probe group")
	}
	return best
}

// depPrefixes returns the served deployment's prefixes as strings. Other
// deployments share site IDs (city codes), so announcement checks must be
// scoped to the deployment's own prefixes.
func depPrefixes(s *Server) map[string]bool {
	out := map[string]bool{}
	for _, p := range s.runner.Prefixes() {
		out[p.String()] = true
	}
	return out
}

// do runs one request against the server's handler.
func do(t *testing.T, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, target, rd))
	return rec
}

// decode unmarshals a response body.
func decode(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("bad response body %q: %v", rec.Body.String(), err)
	}
}

// TestServeIngestAndQuery drives the full API: status, event ingest over
// POST /events, load and catchment queries, diff attribution, and explain.
func TestServeIngestAndQuery(t *testing.T) {
	s := testServer(t, 7)
	h := s.Handler()

	var status statusView
	rec := do(t, h, "GET", "/status", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /status = %d: %s", rec.Code, rec.Body)
	}
	decode(t, rec, &status)
	if status.Seq != 1 || status.Tick != 0 || status.Events != 0 {
		t.Errorf("initial status = %+v, want seq 1, tick 0, events 0", status)
	}
	if status.Dep != s.Dep().Name {
		t.Errorf("status dep = %q, want %q", status.Dep, s.Dep().Name)
	}

	site := busiestSite(t, s)
	rec = do(t, h, "POST", "/events", fmt.Sprintf("at 3 site-down %s\n", site))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /events = %d: %s", rec.Code, rec.Body)
	}
	var ev eventsView
	decode(t, rec, &ev)
	if len(ev.Applied) != 1 || ev.Applied[0].Tick != 3 || ev.Applied[0].Dirty == 0 {
		t.Errorf("applied = %+v, want one event at tick 3 with dirty > 0", ev.Applied)
	}

	// /load is deterministic: two reads of the same state are byte-equal,
	// and the withdrawn site now serves nothing.
	l1 := do(t, h, "GET", "/load", "")
	l2 := do(t, h, "GET", "/load", "")
	if l1.Code != http.StatusOK || l1.Body.String() != l2.Body.String() {
		t.Errorf("GET /load not deterministic (codes %d/%d)", l1.Code, l2.Code)
	}
	var load loadView
	decode(t, l1, &load)
	if load.Tick != 3 || load.Bucket != 3 {
		t.Errorf("load at tick %d bucket %d, want 3/3", load.Tick, load.Bucket)
	}
	for _, sv := range load.Sites {
		if sv.Site == site && (sv.Demand != 0 || sv.Groups != 0) {
			t.Errorf("withdrawn site %s still serves %v groups, %v demand", site, sv.Groups, sv.Demand)
		}
	}

	// /catchment no longer lists the withdrawn site as announced on any of
	// the deployment's prefixes (other deployments share city-code site
	// IDs, so the check is scoped to this deployment).
	rec = do(t, h, "GET", "/catchment", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /catchment = %d", rec.Code)
	}
	mine := depPrefixes(s)
	var set struct {
		Announced []struct {
			Prefix string   `json:"prefix"`
			Sites  []string `json:"sites"`
		} `json:"announced"`
	}
	decode(t, rec, &set)
	for _, ps := range set.Announced {
		if !mine[ps.Prefix] {
			continue
		}
		for _, a := range ps.Sites {
			if a == site {
				t.Fatalf("withdrawn site %s still announced on %s", site, ps.Prefix)
			}
		}
	}

	// /diff since tick 0 attributes the moves to the withdrawal.
	rec = do(t, h, "GET", "/diff?since=0", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /diff = %d: %s", rec.Code, rec.Body)
	}
	var dv diffView
	decode(t, rec, &dv)
	if dv.BaseTick != 0 || dv.Tick != 3 {
		t.Errorf("diff base tick %d, cur tick %d, want 0 and 3", dv.BaseTick, dv.Tick)
	}
	if dv.Report.Moved == 0 {
		t.Error("withdrawing the busiest site moved no groups")
	}

	// /explain answers for a moved group.
	group := dv.Report.Moves[0].Group
	rec = do(t, h, "GET", "/explain?group="+group, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /explain = %d: %s", rec.Code, rec.Body)
	}

	// /metrics carries the serve counters.
	rec = do(t, h, "GET", "/metrics", "")
	if !strings.Contains(rec.Body.String(), `"serve.ingest.events": 1`) {
		t.Errorf("metrics missing ingest counter: %s", rec.Body)
	}
}

// TestServeErrorPaths exercises every 4xx the API returns.
func TestServeErrorPaths(t *testing.T) {
	s := testServer(t, 7)
	h := s.Handler()

	// Decode failure carries the 1-based line number.
	rec := do(t, h, "POST", "/events", "at 1 site-down "+busiestSite(t, s)+"\nat 2 bogus-kind x\n")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad event line = %d, want 400", rec.Code)
	}
	var apiErr apiError
	decode(t, rec, &apiErr)
	if apiErr.Line != 2 || len(apiErr.Applied) != 1 {
		t.Errorf("decode error = %+v, want line 2 with 1 applied", apiErr)
	}

	// A well-formed event that cannot apply (unknown site) is a 422.
	rec = do(t, h, "POST", "/events", "at 3 site-down no-such-site\n")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown site = %d, want 422", rec.Code)
	}

	if rec = do(t, h, "GET", "/explain", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("explain without group = %d, want 400", rec.Code)
	}
	if rec = do(t, h, "GET", "/explain?group=NOPE|1", ""); rec.Code != http.StatusNotFound {
		t.Errorf("explain unknown group = %d, want 404", rec.Code)
	}
	if rec = do(t, h, "GET", "/diff?since=x", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("diff bad since = %d, want 400", rec.Code)
	}
	if rec = do(t, h, "POST", "/advance?to=0", ""); rec.Code != http.StatusConflict {
		t.Errorf("advance backwards = %d, want 409", rec.Code)
	}
	if rec = do(t, h, "POST", "/checkpoint", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("checkpoint without path = %d, want 400", rec.Code)
	}
	if rec = do(t, h, "GET", "/nope", ""); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", rec.Code)
	}
}

// TestSnapshotIsolation pins the core concurrency property: a State taken
// before an event still answers from the pre-event world after the event
// has mutated the live engine.
func TestSnapshotIsolation(t *testing.T) {
	s := testServer(t, 7)
	site := busiestSite(t, s)
	before := s.Current()

	if _, err := s.Apply(dynamics.Event{At: 1, Kind: dynamics.SiteDown, Site: site}); err != nil {
		t.Fatal(err)
	}
	after := s.Current()
	if before == after {
		t.Fatal("Apply did not publish a new state")
	}

	// The old snapshot still sees the site announced and serving (on the
	// deployment's own prefixes).
	mine := depPrefixes(s)
	announcedOnDep := func(set glass.CatchmentSet) bool {
		for _, ps := range set.Announced {
			if !mine[ps.Prefix] {
				continue
			}
			for _, a := range ps.Sites {
				if a == site {
					return true
				}
			}
		}
		return false
	}
	cap0, err := before.Catchment()
	if err != nil {
		t.Fatal(err)
	}
	if !announcedOnDep(cap0) {
		t.Errorf("pre-event snapshot lost site %s after the event", site)
	}
	if sl, ok := before.Load.SiteLoadByID(site); !ok || sl.Groups == 0 {
		t.Errorf("pre-event snapshot's load for %s emptied", site)
	}
	// And the new one does not.
	capN, err := after.Catchment()
	if err != nil {
		t.Fatal(err)
	}
	if announcedOnDep(capN) {
		t.Errorf("post-event snapshot still announces %s", site)
	}
}

// TestAdvanceRebinsDemand checks the virtual clock: advancing into another
// time bucket re-evaluates load under that bucket's diurnal demand.
func TestAdvanceRebinsDemand(t *testing.T) {
	s := testServer(t, 7)
	st0 := s.Current()

	st, err := s.AdvanceTo(4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tick != 4 || st.Bucket != 4 || st.Seq != st0.Seq+1 {
		t.Fatalf("advanced state = tick %d bucket %d seq %d", st.Tick, st.Bucket, st.Seq)
	}
	same := true
	for i := range st.Load.Sites {
		if st.Load.Sites[i].Demand != st0.Load.Sites[i].Demand {
			same = false
		}
	}
	if same {
		t.Error("demand identical across time buckets; diurnal cycle not applied")
	}
	// Ticks within the same bucket ring around the day.
	if st, err = s.AdvanceTo(12); err != nil {
		t.Fatal(err)
	}
	if st.Bucket != 12%s.Model().Buckets() {
		t.Errorf("tick 12 lands in bucket %d", st.Bucket)
	}
}

// TestIngestFlashCrowd checks demand-only events: a flash crowd scales its
// area's demand without touching routing, and ends cleanly.
func TestIngestFlashCrowd(t *testing.T) {
	s := testServer(t, 7)
	base := s.Current()

	applied, err := s.Ingest(strings.NewReader("at 0 flash-begin EMEA 3.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 1 || applied[0].Dirty != 0 {
		t.Fatalf("flash applied = %+v, want one event with no reconvergence", applied)
	}
	st := s.Current()
	if len(st.Flash) != 1 {
		t.Fatalf("flash state = %v", st.Flash)
	}
	var baseTotal, flashTotal float64
	for i := range st.Load.Sites {
		baseTotal += base.Load.Sites[i].Demand
		flashTotal += st.Load.Sites[i].Demand
	}
	if flashTotal <= baseTotal {
		t.Errorf("flash crowd demand %.0f not above baseline %.0f", flashTotal, baseTotal)
	}
	if _, err := s.Ingest(strings.NewReader("at 0 flash-end EMEA\n")); err != nil {
		t.Fatal(err)
	}
	if len(s.Current().Flash) != 0 {
		t.Error("flash crowd survived flash-end")
	}
}
