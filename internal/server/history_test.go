package server

import (
	"net/http"
	"path/filepath"
	"strconv"
	"testing"

	"anysim/internal/dynamics"
)

// smallHistoryServer assembles a server with a tiny history ring so
// eviction is reachable in a few events.
func smallHistoryServer(t *testing.T, seed int64, history int) *Server {
	t.Helper()
	w := testWorld(t, seed)
	s, err := New(Config{World: w, Dep: w.Imperva.IM6, History: history})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// advanceThrough moves the clock one tick at a time up to tick, publishing
// one state per tick (each retained in the history ring).
func advanceThrough(t *testing.T, s *Server, from, to int64) {
	t.Helper()
	for tick := from; tick <= to; tick++ {
		if _, err := s.AdvanceTo(tick); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHistoryEvictionBoundary pins StateAt/OldestTick behavior at exactly
// the eviction edge: the oldest retained tick resolves, one tick older does
// not, and /diff against an evicted base is 410 Gone.
func TestHistoryEvictionBoundary(t *testing.T) {
	const history = 4
	s := smallHistoryServer(t, 7, history)

	// Ticks 0 (initial publish) through 9: ten states, ring keeps 4.
	advanceThrough(t, s, 1, 9)
	oldest := s.OldestTick()
	if oldest != 6 {
		t.Fatalf("OldestTick = %d after ticks 0..9 with history %d, want 6", oldest, history)
	}
	if st := s.StateAt(oldest); st == nil || st.Tick != oldest {
		t.Fatalf("StateAt(oldest=%d) = %+v, want the oldest retained state", oldest, st)
	}
	// Exactly one tick past the edge: unreachable.
	if st := s.StateAt(oldest - 1); st != nil {
		t.Fatalf("StateAt(%d) = tick %d, want nil for an evicted tick", oldest-1, st.Tick)
	}
	// StateAt semantics are "newest retained state with Tick <= tick", so a
	// query between retained ticks still resolves.
	if st := s.StateAt(oldest + 1); st == nil || st.Tick != oldest+1 {
		t.Fatalf("StateAt(%d) = %+v", oldest+1, st)
	}

	h := s.Handler()
	rec := do(t, h, "GET", "/diff?since="+strconv.FormatInt(oldest, 10), "")
	if rec.Code != http.StatusOK {
		t.Fatalf("diff at the oldest retained tick = %d: %s", rec.Code, rec.Body)
	}
	rec = do(t, h, "GET", "/diff?since="+strconv.FormatInt(oldest-1, 10), "")
	if rec.Code != http.StatusGone {
		t.Fatalf("diff against an evicted base = %d, want 410 Gone: %s", rec.Code, rec.Body)
	}
	var apiErr apiError
	decode(t, rec, &apiErr)
	if apiErr.Error == "" {
		t.Fatal("410 body has no error message")
	}
}

// TestHistoryEvictionAfterRestore checks the ring edge behaves identically
// on a server restored from a checkpoint: history is not checkpointed, so
// the restored ring starts at the restore tick and evicts from there.
func TestHistoryEvictionAfterRestore(t *testing.T) {
	const history = 3
	s := smallHistoryServer(t, 7, history)
	site := busiestSite(t, s)
	if _, err := s.Apply(dynamics.Event{At: 1, Kind: dynamics.SiteDown, Site: site}); err != nil {
		t.Fatal(err)
	}
	advanceThrough(t, s, 2, 5)
	path := filepath.Join(t.TempDir(), "cp.json")
	if _, err := s.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	cp, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	wb := testWorld(t, 7)
	r, err := New(Config{World: wb, Dep: wb.Imperva.IM6, History: history, Restore: cp})
	if err != nil {
		t.Fatal(err)
	}
	// Immediately after restore the ring holds only the restore publish.
	if got := r.OldestTick(); got != 5 {
		t.Fatalf("OldestTick right after restore = %d, want the checkpoint tick 5", got)
	}
	if st := r.StateAt(4); st != nil {
		t.Fatalf("StateAt(4) after restore = tick %d, want nil (pre-checkpoint history is gone)", st.Tick)
	}
	rec := do(t, r.Handler(), "GET", "/diff?since=4", "")
	if rec.Code != http.StatusGone {
		t.Fatalf("diff before the restore tick = %d, want 410 Gone", rec.Code)
	}

	// Fill and overflow the restored ring; the edge math matches a fresh
	// server's.
	advanceThrough(t, r, 6, 10)
	if got := r.OldestTick(); got != 8 {
		t.Fatalf("OldestTick after overflowing the restored ring = %d, want 8", got)
	}
	if st := r.StateAt(7); st != nil {
		t.Fatalf("StateAt(7) = tick %d, want nil", st.Tick)
	}
	if st := r.StateAt(8); st == nil || st.Tick != 8 {
		t.Fatalf("StateAt(8) = %+v", st)
	}
	rec = do(t, r.Handler(), "GET", "/diff?since=7", "")
	if rec.Code != http.StatusGone {
		t.Fatalf("diff against an evicted post-restore base = %d, want 410", rec.Code)
	}
	rec = do(t, r.Handler(), "GET", "/diff?since=8", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("diff at the restored ring's oldest tick = %d: %s", rec.Code, rec.Body)
	}
}
