package server

import (
	"bufio"
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"anysim/internal/dynamics"
	"anysim/internal/geo"
	"anysim/internal/obs/ts"
)

// TestTimeseriesEndpoint covers GET /timeseries: the index lists the series
// the publish path samples, range queries return tick-keyed points,
// downsampling caps the point count, and a double read of an idle server is
// byte-identical.
func TestTimeseriesEndpoint(t *testing.T) {
	s := testServer(t, 7)
	h := s.Handler()
	site := busiestSite(t, s)
	if _, err := s.Apply(dynamics.Event{At: 1, Kind: dynamics.SiteDown, Site: site}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdvanceTo(2); err != nil {
		t.Fatal(err)
	}

	var idx struct {
		Schema   int      `json:"schema"`
		Capacity int      `json:"capacity"`
		Series   []string `json:"series"`
	}
	rec := do(t, h, "GET", "/timeseries", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /timeseries = %d: %s", rec.Code, rec.Body)
	}
	decode(t, rec, &idx)
	if idx.Schema != ts.SchemaVersion || idx.Capacity != ts.DefaultCapacity {
		t.Fatalf("bad index header: %+v", idx)
	}
	want := map[string]bool{
		"load.max_util": false, "load.unserved": false,
		"reconverge.dirty": false, "site.util{site=" + site + "}": false,
	}
	for _, name := range idx.Series {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("index missing series %q: %v", name, idx.Series)
		}
	}

	// Range query: ticks 0..2 were published, so three points.
	var pts struct {
		Series string       `json:"series"`
		Points [][2]float64 `json:"points"`
	}
	rec = do(t, h, "GET", "/timeseries?series=load.max_util", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("series query = %d: %s", rec.Code, rec.Body)
	}
	decode(t, rec, &pts)
	if len(pts.Points) != 3 || pts.Points[0][0] != 0 || pts.Points[2][0] != 2 {
		t.Fatalf("points = %+v, want ticks 0..2", pts.Points)
	}

	// Bounded and downsampled queries.
	rec = do(t, h, "GET", "/timeseries?series=load.max_util&from=1&to=2", "")
	decode(t, rec, &pts)
	if len(pts.Points) != 2 || pts.Points[0][0] != 1 {
		t.Fatalf("bounded points = %+v", pts.Points)
	}
	rec = do(t, h, "GET", "/timeseries?series=load.max_util&max=1", "")
	decode(t, rec, &pts)
	if len(pts.Points) != 1 || pts.Points[0][0] != 2 {
		t.Fatalf("downsampled points = %+v, want just the newest tick", pts.Points)
	}

	// Determinism: reading twice returns identical bytes.
	a := do(t, h, "GET", "/timeseries?series=load.max_util", "").Body.Bytes()
	b := do(t, h, "GET", "/timeseries?series=load.max_util", "").Body.Bytes()
	if !bytes.Equal(a, b) {
		t.Fatalf("double read differs:\n%s\n%s", a, b)
	}
	if cc := do(t, h, "GET", "/timeseries?series=load.max_util", "").Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}

	// Error paths.
	if rec = do(t, h, "GET", "/timeseries?series=ghost", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown series = %d, want 404", rec.Code)
	}
	if rec = do(t, h, "GET", "/timeseries?series=load.max_util&from=x", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad from = %d, want 400", rec.Code)
	}
	if rec = do(t, h, "GET", "/timeseries?series=load.max_util&max=-1", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad max = %d, want 400", rec.Code)
	}
}

// alertServer assembles a server whose rule fires as soon as any routing
// event reconverges anything: the pager path is testable without hunting
// for an overload in the small world.
func alertServer(t *testing.T, seed int64) *Server {
	t.Helper()
	w := testWorld(t, seed)
	rule, err := ts.ParseRule("slo churn: reconverge.dirty > 0 for 1 ticks")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{World: w, Dep: w.Imperva.IM6, Series: ts.Config{Rules: []ts.Rule{rule}}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAlertsEndpoint covers GET /alerts and the firing count in /healthz:
// a rule over the reconvergence series fires on a site withdrawal and
// resolves on a quiet clock advance.
func TestAlertsEndpoint(t *testing.T) {
	s := alertServer(t, 7)
	h := s.Handler()

	var view struct {
		Firing  int             `json:"firing"`
		Active  []ts.Alert      `json:"active"`
		History []ts.Transition `json:"history"`
	}
	rec := do(t, h, "GET", "/alerts", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /alerts = %d: %s", rec.Code, rec.Body)
	}
	decode(t, rec, &view)
	if view.Firing != 0 || len(view.Active) != 0 || len(view.History) != 0 {
		t.Fatalf("alerts before any event: %+v", view)
	}

	site := busiestSite(t, s)
	if _, err := s.Apply(dynamics.Event{At: 1, Kind: dynamics.SiteDown, Site: site}); err != nil {
		t.Fatal(err)
	}
	rec = do(t, h, "GET", "/alerts", "")
	decode(t, rec, &view)
	if view.Firing != 1 || len(view.Active) != 1 || view.Active[0].State != ts.StateFiring {
		t.Fatalf("alerts after site-down: %s", rec.Body)
	}
	if view.Active[0].Rule != "churn" || view.Active[0].FiredTick != 1 {
		t.Fatalf("active alert = %+v", view.Active[0])
	}

	var hv healthView
	decode(t, do(t, h, "GET", "/healthz", ""), &hv)
	if hv.FiringAlerts != 1 {
		t.Fatalf("healthz firing_alerts = %d, want 1", hv.FiringAlerts)
	}
	if !strings.Contains(do(t, h, "GET", "/metrics.prom", "").Body.String(), "anysim_slo_firing 1") {
		t.Fatal("prometheus exposition missing anysim_slo_firing 1")
	}

	// A demand-only event at the next tick reconverges nothing, so the
	// tick-2 sample of reconverge.dirty is 0 and the alert resolves.
	if _, err := s.Apply(dynamics.Event{At: 2, Kind: dynamics.FlashBegin, Area: geo.EMEA, Factor: 1.5}); err != nil {
		t.Fatal(err)
	}
	rec = do(t, h, "GET", "/alerts", "")
	decode(t, rec, &view)
	if view.Firing != 0 {
		t.Fatalf("alert did not resolve on a churn-free tick: %s", rec.Body)
	}
	states := []ts.State{}
	for _, tr := range view.History {
		states = append(states, tr.State)
	}
	if len(states) != 2 || states[0] != ts.StateFiring || states[1] != ts.StateResolved {
		t.Fatalf("history states = %v, want [firing resolved]", states)
	}

	// Determinism: reading twice returns identical bytes.
	a := do(t, h, "GET", "/alerts", "").Body.Bytes()
	b := do(t, h, "GET", "/alerts", "").Body.Bytes()
	if !bytes.Equal(a, b) {
		t.Fatalf("double read differs:\n%s\n%s", a, b)
	}
}

// TestWatchAlertFrames checks SLO transitions are pushed to /watch
// subscribers as kind "alert" frames, after the state delta that caused
// them.
func TestWatchAlertFrames(t *testing.T) {
	s := alertServer(t, 7)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	if hello := readSSEData(t, sc); !strings.Contains(hello, `"kind":"hello"`) {
		t.Fatalf("first frame is not hello: %s", hello)
	}
	site := busiestSite(t, s)
	if _, err := s.Apply(dynamics.Event{At: 1, Kind: dynamics.SiteDown, Site: site}); err != nil {
		t.Fatal(err)
	}
	delta := readSSEData(t, sc)
	if !strings.Contains(delta, `"kind":"ingest"`) {
		t.Fatalf("expected the ingest delta first: %s", delta)
	}
	alert := readSSEData(t, sc)
	for _, want := range []string{`"kind":"alert"`, `"rule":"churn"`, `"state":"firing"`, `"tick":1`, `"series":"reconverge.dirty"`} {
		if !strings.Contains(alert, want) {
			t.Errorf("alert frame missing %s: %s", want, alert)
		}
	}
}
