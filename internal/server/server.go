// Package server is the always-on face of the simulator: where the
// subcommands in cmd/anysim build a world, run one experiment, and exit,
// `anysim serve` keeps a world resident and turns it into a live digital
// twin of an anycast deployment. Routing events (the dynamics DSL) stream
// in over stdin or HTTP and are applied through the BGP engine's
// incremental reconvergence; a virtual clock advances demand through the
// diurnal time buckets; and a query API answers catchment, load, and
// explain questions about the current state without ever blocking ingest.
//
// The concurrency design leans entirely on Engine.Fork: every published
// state holds a copy-on-write fork of the engine (microseconds to make),
// so queries read an immutable snapshot while the one ingest goroutine
// mutates the real engine. A query that arrives mid-event sees the
// pre-event world, never a half-converged one. Recent states are retained
// in a ring so /diff can attribute catchment moves to the events between
// two ticks.
package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"anysim/internal/atlas"
	"anysim/internal/bgp"
	"anysim/internal/cdn"
	"anysim/internal/dynamics"
	"anysim/internal/geo"
	"anysim/internal/glass"
	"anysim/internal/obs"
	"anysim/internal/obs/ts"
	"anysim/internal/traffic"
	"anysim/internal/worldgen"
)

// DefaultHistory is the number of published states retained for /diff.
const DefaultHistory = 128

// Config assembles a server over a built world.
type Config struct {
	// World is the simulated Internet; it must have been built with
	// Provenance on (explain queries and catchment classification need the
	// engine's decision records). The world's Metrics and Tracer, if any,
	// observe the server too.
	World *worldgen.World
	// Dep is the deployment the server fronts (events and queries are
	// scoped to it).
	Dep *cdn.Deployment
	// Demand and Capacity shape the load model; zero values take the
	// package defaults (Demand.Seed defaults to the world seed).
	Demand   traffic.DemandConfig
	Capacity traffic.CapacityConfig
	// History bounds the retained state ring; DefaultHistory when 0.
	History int
	// Series configures the time-series flight recorder: every published
	// state is sampled into tick-keyed ring buffers and evaluated against
	// the SLO rules. Zero value takes the ts defaults (ts.DefaultCapacity,
	// ts.DefaultRules). Series are not checkpointed; a restored server
	// records from the restore tick onward.
	Series ts.Config
	// CheckpointPath is the default target of POST /checkpoint.
	CheckpointPath string
	// Restore, when set, resumes from a checkpoint instead of starting at
	// tick 0: routing, link states, flash crowds, clock, capacities, and
	// the metrics registry are all reinstated bit-identically. The world
	// must match the checkpoint's compatibility header (seed, world-config
	// hash, schema) and deployment.
	Restore *Checkpoint
}

// Server owns one world and applies events to it. All mutation goes
// through the mutex-serialized ingest path (Apply, AdvanceTo, Checkpoint);
// queries never take that lock — they read the last published State.
type Server struct {
	cfg   Config
	w     *worldgen.World
	dep   *cdn.Deployment
	model *traffic.Model
	eval  *traffic.Evaluator

	mu     sync.Mutex
	runner *dynamics.Runner
	tick   int64
	events int64 // events applied (ingest clock)
	seq    int64 // states published
	hist   []*State

	cur atomic.Pointer[State]

	// watch fans state deltas out to SSE /watch subscribers; lastApplyNs is
	// the wall time of the last ingest (UnixNano; 0 before the first), from
	// which /healthz derives its ingest lag.
	watch       watchHub
	lastApplyNs atomic.Int64

	// tsdb is the flight recorder behind /timeseries and /alerts, sampled
	// on the serial publish path so its contents are a pure function of the
	// event history.
	tsdb *ts.DB

	sobs serverObs
}

// serverObs bundles the server's observability handles. Ingest-side
// metrics are sim-class (the event stream determines them); query counts
// are wall-class, since no two runs see the same queries.
type serverObs struct {
	events *obs.Counter   // serve.ingest.events
	ticks  *obs.Counter   // serve.ticks
	dirty  *obs.Histogram // serve.ingest.dirty
	passes *obs.Histogram // serve.ingest.passes

	queries *obs.Counter   // serve.queries (wall)
	queryNs *obs.Histogram // serve.query.ns (wall)

	tracer *obs.Tracer
}

// State is one published snapshot: an immutable view of the world at a
// (seq, tick) instant. Engine is a copy-on-write fork — later ingest never
// mutates it — so any number of queries can read one State concurrently.
type State struct {
	Seq    int64
	Tick   int64
	Bucket int
	Engine *bgp.Engine
	Load   *traffic.LoadReport
	Flash  map[geo.Area]float64

	srv     *Server
	capOnce sync.Once
	capSet  glass.CatchmentSet
	capErr  error
}

// Catchment returns the deployment's full captured catchment at this
// state, computed on first use and memoized (capture walks every probe
// group; /catchment and /diff share one capture per state).
func (st *State) Catchment() (glass.CatchmentSet, error) {
	st.capOnce.Do(func() {
		st.capSet, st.capErr = glass.Capture(st.Engine, st.srv.dep, st.measurer(), st.srv.w.Platform.Retained())
	})
	return st.capSet, st.capErr
}

// measurer returns the world's measurer rebound to this state's engine
// fork: a Measurer resolves forwarding through the engine it holds, and a
// query must see the snapshot, not the live (mutating) engine.
func (st *State) measurer() *atlas.Measurer {
	return st.srv.w.Measurer.WithEngine(st.Engine)
}

// New assembles a server, deriving site capacities from the world's
// baseline routing (or reinstating checkpointed ones — see Config.Restore)
// and publishing the initial state.
func New(cfg Config) (*Server, error) {
	if cfg.World == nil || cfg.Dep == nil {
		return nil, fmt.Errorf("server: Config.World and Config.Dep are required")
	}
	w := cfg.World
	if !w.Engine.ProvenanceEnabled() {
		return nil, fmt.Errorf("server: world must be built with Provenance on (worldgen.Config.Provenance)")
	}
	if cfg.History == 0 {
		cfg.History = DefaultHistory
	}
	dcfg := cfg.Demand
	if dcfg.Seed == 0 {
		dcfg.Seed = w.Config.Seed
	}
	s := &Server{cfg: cfg, w: w, dep: cfg.Dep}
	s.model = traffic.NewModel(w.Platform, dcfg)

	reg, tr := w.Config.Metrics, w.Config.Tracer
	s.tsdb = ts.New(cfg.Series)
	s.tsdb.Instrument(reg, tr)
	s.sobs = serverObs{
		events:  reg.Counter("serve.ingest.events"),
		ticks:   reg.Counter("serve.ticks"),
		dirty:   reg.Histogram("serve.ingest.dirty", obs.Pow2Bounds(20)),
		passes:  reg.Histogram("serve.ingest.passes", obs.Pow2Bounds(6)),
		queries: reg.WallCounter("serve.queries"),
		queryNs: reg.WallHistogram("serve.query.ns", obs.Pow2Bounds(34)),
		tracer:  tr,
	}

	if cp := cfg.Restore; cp != nil {
		if err := s.restore(cp); err != nil {
			return nil, err
		}
		s.eval.Instrument(reg)
		s.mu.Lock()
		s.publishLocked()
		s.mu.Unlock()
		// The metrics snapshot is reinstated last: rebuilding routing and
		// publishing the initial state count work the checkpointed run
		// already counted, and the restore must erase that double count.
		if reg != nil && len(cp.Metrics) > 0 {
			if err := reg.RestoreSnapshot(cp.Metrics); err != nil {
				return nil, fmt.Errorf("server: restore metrics: %w", err)
			}
		}
		s.emitTrace("restore", obs.Str("dep", s.dep.Name), obs.Int("events", s.events))
		return s, nil
	}

	// Fresh start: capacities derive from the baseline diurnal peak, so the
	// evaluator must be built before any event perturbs the catchments.
	s.eval = traffic.NewEvaluator(w.Engine, s.dep, s.model, cfg.Capacity)
	s.eval.Instrument(reg)
	s.runner = dynamics.NewRunner(w.Engine, s.dep)
	s.runner.Measurer = w.Measurer
	s.runner.Probes = w.Platform.Retained()
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()
	return s, nil
}

// Model returns the demand model (read-only).
func (s *Server) Model() *traffic.Model { return s.model }

// Dep returns the deployment the server fronts.
func (s *Server) Dep() *cdn.Deployment { return s.dep }

// Current returns the last published state. Never nil after New.
func (s *Server) Current() *State { return s.cur.Load() }

// StateAt returns the newest retained state with Tick <= tick, or nil when
// the history ring no longer reaches back that far.
func (s *Server) StateAt(tick int64) *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.hist) - 1; i >= 0; i-- {
		if s.hist[i].Tick <= tick {
			return s.hist[i]
		}
	}
	return nil
}

// EventsApplied returns the ingest clock: events applied so far.
func (s *Server) EventsApplied() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// OldestTick returns the earliest tick the history ring still covers.
func (s *Server) OldestTick() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hist[0].Tick
}

// ApplyResult reports one ingested event.
type ApplyResult struct {
	Seq    int64  `json:"seq"`
	Tick   int64  `json:"tick"`
	Event  string `json:"event"`
	Dirty  int    `json:"dirty"`
	Passes int    `json:"passes"`
	Full   bool   `json:"full,omitempty"`
}

// Apply ingests one event: the clock advances to the event's tick (an
// event timed before the current tick applies "now" — the server's clock
// only runs forward), the event reconverges routing incrementally, and a
// new state is published.
func (s *Server) Apply(ev dynamics.Event) (ApplyResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int64(ev.At) > s.tick {
		s.tick = int64(ev.At)
	}
	if err := s.runner.Apply(ev); err != nil {
		return ApplyResult{}, err
	}
	s.events++
	var stats bgp.ReconvergeStats
	switch ev.Kind {
	case dynamics.FlashBegin, dynamics.FlashEnd:
		// Demand-only events leave routing (and its stats) untouched.
	default:
		stats = s.w.Engine.LastReconvergeStats()
	}
	prev := s.cur.Load()
	s.tsdb.SampleReconverge(s.tick, stats.Dirty, stats.Passes)
	st, trs := s.publishLocked()
	s.lastApplyNs.Store(time.Now().UnixNano())
	s.sobs.events.Inc()
	s.sobs.dirty.Observe(int64(stats.Dirty))
	s.sobs.passes.Observe(int64(stats.Passes))
	s.emitTrace("ingest",
		obs.Str("event", ev.String()),
		obs.Int("dirty", int64(stats.Dirty)),
		obs.Int("passes", int64(stats.Passes)),
		obs.Bool("full", stats.Full),
	)
	res := ApplyResult{
		Seq: st.Seq, Tick: s.tick, Event: ev.String(),
		Dirty: stats.Dirty, Passes: stats.Passes, Full: stats.Full,
	}
	s.notifyWatchers("ingest", prev, st, res)
	s.notifyAlerts(st, trs)
	return res, nil
}

// AdvanceTo moves the virtual clock to tick (strictly forward), re-binning
// demand into the tick's time bucket and publishing the re-evaluated load.
func (s *Server) AdvanceTo(tick int64) (*State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tick <= s.tick {
		return nil, fmt.Errorf("server: clock runs forward: at tick %d, cannot advance to %d", s.tick, tick)
	}
	s.tick = tick
	prev := s.cur.Load()
	st, trs := s.publishLocked()
	s.lastApplyNs.Store(time.Now().UnixNano())
	s.sobs.ticks.Inc()
	s.emitTrace("advance")
	s.notifyWatchers("advance", prev, st, ApplyResult{})
	s.notifyAlerts(st, trs)
	return st, nil
}

// publishLocked evaluates load for the current tick's bucket (with any
// active flash crowds folded in), publishes a new immutable state, samples
// it into the flight recorder, and evaluates the SLO rules, returning any
// alert transitions this publish caused. Caller holds s.mu.
func (s *Server) publishLocked() (*State, []ts.Transition) {
	bucket := int(s.tick % int64(s.model.Buckets()))
	mat := s.model.Matrix(bucket)
	flash := s.runner.ActiveFlash()
	for _, a := range sortedAreas(flash) {
		mat = s.model.FlashCrowd(mat, a, flash[a])
	}
	s.seq++
	st := &State{
		Seq:    s.seq,
		Tick:   s.tick,
		Bucket: bucket,
		Engine: s.w.Engine.Fork(),
		Flash:  flash,
		srv:    s,
	}
	// Load is evaluated on the fork: the report is pinned to exactly the
	// routing state the queries against this State will see.
	st.Load = s.eval.EvaluateOn(st.Engine, mat)
	s.cur.Store(st)
	s.hist = append(s.hist, st)
	if len(s.hist) > s.cfg.History {
		s.hist = s.hist[len(s.hist)-s.cfg.History:]
	}
	s.tsdb.SampleLoad(s.tick, s.model, st.Load, s.eval.Config().SoftUtil)
	return st, s.tsdb.Eval(s.tick)
}

// Series returns the time-series flight recorder. Never nil after New.
func (s *Server) Series() *ts.DB { return s.tsdb }

// emitTrace emits one server event clocked by (event, tick).
func (s *Server) emitTrace(name string, attrs ...obs.Attr) {
	if !s.sobs.tracer.Enabled() {
		return
	}
	s.sobs.tracer.Emit(obs.Event{
		Scope: "serve",
		Name:  name,
		Clock: []obs.Coord{{Key: "event", V: s.events}, {Key: "tick", V: s.tick}},
		Attrs: attrs,
	})
}

// sortedAreas returns a flash map's areas in deterministic order.
func sortedAreas(m map[geo.Area]float64) []geo.Area {
	out := make([]geo.Area, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
