package server

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"anysim/internal/dynamics"
)

// readSSEData reads SSE frames until one data: line arrives (skipping
// event:/comment lines), with a watchdog so a broken stream fails the test
// instead of hanging it.
func readSSEData(t *testing.T, sc *bufio.Scanner) string {
	t.Helper()
	type line struct {
		s  string
		ok bool
	}
	ch := make(chan line, 1)
	go func() {
		for sc.Scan() {
			if s := sc.Text(); strings.HasPrefix(s, "data: ") {
				ch <- line{s: strings.TrimPrefix(s, "data: "), ok: true}
				return
			}
		}
		ch <- line{}
	}()
	select {
	case l := <-ch:
		if !l.ok {
			t.Fatalf("SSE stream ended early: %v", sc.Err())
		}
		return l.s
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for an SSE event")
		return ""
	}
}

// TestWatchSSE subscribes to /watch over a real connection, checks the
// hello frame, applies an event, and checks the pushed delta reflects it.
// Then it disconnects and checks the hub reclaims the subscriber slot.
func TestWatchSSE(t *testing.T) {
	s := testServer(t, 7)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /watch = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}
	// A buffering reverse proxy would turn the live stream into a stale
	// one; the stream must opt out explicitly.
	if ab := resp.Header.Get("X-Accel-Buffering"); ab != "no" {
		t.Fatalf("X-Accel-Buffering = %q, want no", ab)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	hello := readSSEData(t, sc)
	if !strings.Contains(hello, `"kind":"hello"`) {
		t.Fatalf("first frame is not hello: %s", hello)
	}

	// The subscription must be registered before the event is applied, or
	// the broadcast has nobody to reach. The hello frame already proves the
	// handler ran subscribe(), but double-check the hub agrees.
	if n := s.watch.active(); n != 1 {
		t.Fatalf("watchers = %d, want 1", n)
	}

	site := busiestSite(t, s)
	if _, err := s.Apply(dynamics.Event{At: 1, Kind: dynamics.SiteDown, Site: site}); err != nil {
		t.Fatal(err)
	}
	delta := readSSEData(t, sc)
	for _, want := range []string{`"kind":"ingest"`, `"seq":2`, `"tick":1`} {
		if !strings.Contains(delta, want) {
			t.Errorf("delta frame missing %s: %s", want, delta)
		}
	}
	// Withdrawing the busiest site must move at least one probe group.
	if !strings.Contains(delta, `"moved_groups":`) {
		t.Errorf("delta frame has no moved_groups: %s", delta)
	}

	// Disconnect: the handler must notice the closed context and
	// unsubscribe, so later broadcasts have no one to deliver to.
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for s.watch.active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watcher not cleaned up after disconnect: %d active", s.watch.active())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchBroadcastDropsWhenFull checks the lossy contract: a subscriber
// that never drains loses events instead of blocking the ingest path.
func TestWatchBroadcastDropsWhenFull(t *testing.T) {
	var h watchHub
	ch := h.subscribe()
	defer h.unsubscribe(ch)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			h.broadcast([]byte("x"))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast blocked on a full subscriber")
	}
	if n := len(ch); n != cap(ch) {
		t.Fatalf("expected a full buffer (%d), got %d", cap(ch), n)
	}
}

// TestHealthz checks the identity-and-liveness body: world and policy
// hashes, the -1 ingest lag before any event, and a real lag after one.
func TestHealthz(t *testing.T) {
	s := testServer(t, 7)
	h := s.Handler()

	var hv healthView
	rec := do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d: %s", rec.Code, rec.Body)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}
	decode(t, rec, &hv)
	if hv.Status != "ok" || hv.Dep == "" {
		t.Fatalf("bad health body: %+v", hv)
	}
	if hv.World != s.w.Config.Hash() || hv.Policy != s.w.Config.PolicyHash() {
		t.Fatalf("health hashes do not match the world: %+v", hv)
	}
	if hv.IngestLagMs != -1 {
		t.Fatalf("IngestLagMs = %d before any ingest, want -1", hv.IngestLagMs)
	}

	site := busiestSite(t, s)
	if _, err := s.Apply(dynamics.Event{At: 1, Kind: dynamics.SiteDown, Site: site}); err != nil {
		t.Fatal(err)
	}
	rec = do(t, h, "GET", "/healthz", "")
	decode(t, rec, &hv)
	if hv.IngestLagMs < 0 {
		t.Fatalf("IngestLagMs = %d after an ingest, want >= 0", hv.IngestLagMs)
	}
	if hv.Events != 1 || hv.Seq != 2 {
		t.Fatalf("health clock after one event: %+v", hv)
	}
}

// TestMetricsProm checks the Prometheus endpoint serves text exposition
// derived from the world's live registry.
func TestMetricsProm(t *testing.T) {
	s := testServer(t, 7)
	h := s.Handler()

	rec := do(t, h, "GET", "/metrics.prom", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics.prom = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE anysim_serve_ingest_events_total counter",
		"anysim_worldgen_phase_cdns_last_ns",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestJSONResponsesNoStore checks every JSON endpoint tells caches to stay
// out of the way — a cached answer from a live twin is a stale twin.
func TestJSONResponsesNoStore(t *testing.T) {
	s := testServer(t, 7)
	h := s.Handler()
	for _, target := range []string{"/status", "/load", "/metrics", "/catchment"} {
		rec := do(t, h, "GET", target, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", target, rec.Code, rec.Body)
		}
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("GET %s: Cache-Control = %q, want no-store", target, cc)
		}
	}
}

// TestPerEndpointMetrics checks the instrumented wrapper records a status
// counter and latency histogram per endpoint once wall metrics are on.
func TestPerEndpointMetrics(t *testing.T) {
	s := testServer(t, 7)
	s.w.Config.Metrics.EnableWall(true)
	h := s.Handler()
	do(t, h, "GET", "/status", "")
	do(t, h, "GET", "/status", "")
	do(t, h, "GET", "/explain", "") // missing ?group= -> 400

	snap := string(s.w.Config.Metrics.AppendSnapshot(nil))
	for _, want := range []string{
		`"serve.http.status.status.200": 2`,
		`"serve.http.explain.status.400": 1`,
		`"serve.http.status.ns"`,
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %s:\n%s", want, snap)
		}
	}
}
