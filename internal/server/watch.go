package server

// The live telemetry plane: an SSE /watch stream pushing state deltas to
// subscribers as events are ingested, Prometheus text exposition at
// /metrics.prom, and a /healthz identity-and-liveness endpoint. The watch
// hub is deliberately lossy: every subscriber gets a small buffered
// channel, broadcasts never block the ingest path, and a subscriber that
// cannot keep up loses intermediate events (each event carries the full
// current seq/tick, so a dropped delta never leaves a watcher believing a
// stale state is current).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"anysim/internal/obs/ts"
)

// watchEvent is one SSE /watch payload: what happened and where the twin
// stands now. Kind is "hello" (subscription start), "ingest" (an event was
// applied), or "advance" (the virtual clock moved).
type watchEvent struct {
	Kind   string `json:"kind"`
	Seq    int64  `json:"seq"`
	Tick   int64  `json:"tick"`
	Bucket int    `json:"bucket"`
	Event  string `json:"event,omitempty"`
	Dirty  int    `json:"dirty,omitempty"`
	Passes int    `json:"passes,omitempty"`
	Full   bool   `json:"full,omitempty"`

	MaxUtilization float64  `json:"max_utilization"`
	Unserved       float64  `json:"unserved,omitempty"`
	Overloads      []string `json:"overloads,omitempty"`
	// MovedGroups counts probe groups whose serving site changed from the
	// previously published state — the catchment delta of this event.
	MovedGroups int `json:"moved_groups,omitempty"`
}

// watchHub fans watch payloads out to SSE subscribers.
type watchHub struct {
	mu   sync.Mutex
	subs map[chan []byte]struct{}
}

// subscribe registers a new watcher and returns its delivery channel.
func (h *watchHub) subscribe() chan []byte {
	ch := make(chan []byte, 16)
	h.mu.Lock()
	if h.subs == nil {
		h.subs = map[chan []byte]struct{}{}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

// unsubscribe removes a watcher. The channel is not closed — a concurrent
// broadcast may still hold it; it is simply dropped and collected.
func (h *watchHub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// active returns the subscriber count; the ingest path checks it before
// building a payload so the no-watcher case costs one mutex acquisition.
func (h *watchHub) active() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// broadcast delivers a payload to every subscriber without blocking: a
// watcher whose buffer is full loses this event.
func (h *watchHub) broadcast(b []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- b:
		default:
		}
	}
}

// notifyWatchers builds and broadcasts one watch payload. Called from the
// ingest path (under s.mu) after a new state was published; prev is the
// state it replaced. Skipped entirely when nobody is watching.
func (s *Server) notifyWatchers(kind string, prev, st *State, res ApplyResult) {
	if s.watch.active() == 0 {
		return
	}
	ev := watchEvent{
		Kind:           kind,
		Seq:            st.Seq,
		Tick:           st.Tick,
		Bucket:         st.Bucket,
		Event:          res.Event,
		Dirty:          res.Dirty,
		Passes:         res.Passes,
		Full:           res.Full,
		MaxUtilization: st.Load.MaxUtilization(),
		Unserved:       st.Load.Unserved,
	}
	for _, sl := range st.Load.Overloads() {
		ev.Overloads = append(ev.Overloads, sl.Site)
	}
	if prev != nil {
		for key, b := range prev.Load.Assignments {
			if a, ok := st.Load.Assignments[key]; ok && a.Site != b.Site {
				ev.MovedGroups++
			}
		}
	}
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.watch.broadcast(b)
}

// alertFrame is one SSE /watch payload of kind "alert": an SLO rule changed
// lifecycle state at the (seq, tick) the frame carries.
type alertFrame struct {
	Kind      string   `json:"kind"`
	Seq       int64    `json:"seq"`
	Tick      int64    `json:"tick"`
	Rule      string   `json:"rule"`
	State     ts.State `json:"state"`
	Series    string   `json:"series"`
	Value     float64  `json:"value"`
	Threshold float64  `json:"threshold"`
}

// notifyAlerts broadcasts one alert frame per SLO transition the publish of
// st caused, after the state delta so watchers see cause before pager.
func (s *Server) notifyAlerts(st *State, trs []ts.Transition) {
	if len(trs) == 0 || s.watch.active() == 0 {
		return
	}
	for _, tr := range trs {
		b, err := json.Marshal(alertFrame{
			Kind: "alert", Seq: st.Seq, Tick: st.Tick,
			Rule: tr.Rule, State: tr.State, Series: tr.Series,
			Value: tr.Value, Threshold: tr.Threshold,
		})
		if err != nil {
			continue
		}
		s.watch.broadcast(b)
	}
}

// handleWatch is GET /watch: a Server-Sent-Events stream. The first event
// ("hello") carries the current state; every subsequent ingest or clock
// advance pushes a delta. The subscription ends when the client goes away;
// its hub slot is reclaimed immediately.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	ch := s.watch.subscribe()
	defer s.watch.unsubscribe(ch)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	// A buffering reverse proxy (nginx defaults) would turn the live stream
	// into a stale one; tell it to pass frames through as they flush.
	h.Set("X-Accel-Buffering", "no")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	st := s.Current()
	hello := watchEvent{
		Kind: "hello", Seq: st.Seq, Tick: st.Tick, Bucket: st.Bucket,
		MaxUtilization: st.Load.MaxUtilization(), Unserved: st.Load.Unserved,
	}
	for _, sl := range st.Load.Overloads() {
		hello.Overloads = append(hello.Overloads, sl.Site)
	}
	if b, err := json.Marshal(hello); err == nil {
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", b)
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case b := <-ch:
			if _, err := fmt.Fprintf(w, "event: state\ndata: %s\n\n", b); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// healthView is the GET /healthz body: liveness plus the identity triple
// (seed, world hash, policy hash) peers need to decide whether this twin is
// comparable to theirs.
type healthView struct {
	Status   string `json:"status"`
	Dep      string `json:"dep"`
	Seed     int64  `json:"seed"`
	World    string `json:"world"`
	Policy   string `json:"policy,omitempty"`
	Seq      int64  `json:"seq"`
	Tick     int64  `json:"tick"`
	Bucket   int    `json:"bucket"`
	Events   int64  `json:"events"`
	Watchers int    `json:"watchers"`
	// FiringAlerts counts SLO rules currently in the firing state — the
	// one-number pager signal (also exported as the slo.firing gauge).
	FiringAlerts int   `json:"firing_alerts"`
	IngestLagMs  int64 `json:"ingest_lag_ms"` // ms since last ingest; -1 before the first
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Current()
	lag := int64(-1)
	if t := s.lastApplyNs.Load(); t > 0 {
		lag = (time.Now().UnixNano() - t) / int64(time.Millisecond)
	}
	writeJSON(w, http.StatusOK, healthView{
		Status:       "ok",
		Dep:          s.dep.Name,
		Seed:         s.w.Config.Seed,
		World:        s.w.Config.Hash(),
		Policy:       s.w.Config.PolicyHash(),
		Seq:          st.Seq,
		Tick:         st.Tick,
		Bucket:       st.Bucket,
		Events:       s.EventsApplied(),
		Watchers:     s.watch.active(),
		FiringAlerts: s.tsdb.FiringCount(),
		IngestLagMs:  lag,
	})
}

// handleMetricsProm is GET /metrics.prom: the registry in Prometheus text
// exposition format (see obs.AppendProm).
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	h := w.Header()
	h.Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.Set("Cache-Control", "no-store")
	s.w.Config.Metrics.WriteProm(w)
}
