// Package cdnfinder reproduces the paper's CDN identification steps
// (§4.1-4.2): a registry of the top CDN providers and their redirection
// methods (Table 5 / Appendix A), and a census that emulates a worldwide
// clientele by resolving customer hostnames through ECS for a spread of
// client /24 prefixes, counting distinct A records to find the hostnames
// served by regional IP anycast platforms (the Edgio-3 / Edgio-4 /
// Imperva-6 sets).
package cdnfinder

import (
	"net/netip"
	"sort"

	"anysim/internal/atlas"
	"anysim/internal/dnssim"
	"anysim/internal/netplan"
)

// Redirection is a CDN's client-redirection method.
type Redirection uint8

// Redirection methods from Table 5.
const (
	GlobalAnycast Redirection = iota
	DNSRedirection
	DNSAndGlobalAnycast
	RegionalAnycast
)

var redirectionNames = map[Redirection]string{
	GlobalAnycast:       "Global Anycast",
	DNSRedirection:      "DNS",
	DNSAndGlobalAnycast: "DNS & Global Anycast",
	RegionalAnycast:     "Regional Anycast",
}

// String names the method as in Table 5.
func (r Redirection) String() string { return redirectionNames[r] }

// SurveyEntry is one row of Table 5.
type SurveyEntry struct {
	Provider string
	Method   Redirection
}

// Table5 returns the paper's survey of the top-15 CDN providers' redirection
// methods (Appendix A), in the paper's order.
func Table5() []SurveyEntry {
	return []SurveyEntry{
		{"Google Cloud CDN", GlobalAnycast},
		{"Cloudflare", GlobalAnycast},
		{"Amazon Cloudfront", DNSRedirection},
		{"Akamai", DNSRedirection},
		{"Fastly", DNSAndGlobalAnycast},
		{"Stackpath", GlobalAnycast},
		{"Edgio (EdgeCast)", RegionalAnycast},
		{"bunny.net", DNSRedirection},
		{"Alibaba Cloud", DNSRedirection},
		{"Imperva (Incapsula)", RegionalAnycast},
		{"Microsoft Azure", GlobalAnycast},
		{"ChinanetCenter/Wangsu", DNSRedirection},
		{"CDN77", DNSRedirection},
		{"Tencent Cloud", DNSRedirection},
		{"Vercel", DNSRedirection},
	}
}

// RegionalAnycastProviders returns the Table-5 providers deploying regional
// anycast — the paper finds exactly Edgio and Imperva.
func RegionalAnycastProviders() []string {
	var out []string
	for _, e := range Table5() {
		if e.Method == RegionalAnycast {
			out = append(out, e.Provider)
		}
	}
	return out
}

// Census is the §4.2 hostname-resolution sweep outcome.
type Census struct {
	// Distinct maps hostname -> number of distinct A records observed
	// across the worldwide client sweep.
	Distinct map[string]int
	// Records maps hostname -> the sorted distinct A records.
	Records map[string][]netip.Addr
}

// ClientPrefixes derives the worldwide /24 client prefix list from a probe
// population, the paper's "list of /24 client IP prefixes that cover the IP
// address span of the entire RIPE Atlas".
func ClientPrefixes(probes []*atlas.Probe) []netip.Prefix {
	seen := map[netip.Prefix]bool{}
	var out []netip.Prefix
	for _, p := range probes {
		pref := netplan.CoverPrefix(p.Addr)
		if !seen[pref] {
			seen[pref] = true
			out = append(out, pref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// RunCensus resolves each hostname once per client prefix via an
// ECS-speaking resolver (the paper uses Google DNS with ECS) and tallies
// the distinct A records.
func RunCensus(auth *dnssim.Authoritative, hostnames []string, clients []netip.Prefix) *Census {
	c := &Census{
		Distinct: make(map[string]int, len(hostnames)),
		Records:  make(map[string][]netip.Addr, len(hostnames)),
	}
	for _, host := range hostnames {
		seen := map[netip.Addr]bool{}
		for _, client := range clients {
			if a, ok := auth.ResolveDirect(host, client.Addr()); ok {
				seen[a] = true
			}
		}
		var records []netip.Addr
		for a := range seen {
			records = append(records, a)
		}
		sort.Slice(records, func(i, j int) bool { return records[i].String() < records[j].String() })
		c.Distinct[host] = len(records)
		c.Records[host] = records
	}
	return c
}

// SetsByDistinctCount groups hostnames by their distinct A-record count:
// the paper's Edgio-3 / Edgio-4 / Imperva-6 set construction. Hostnames
// resolving to fewer than two addresses are not regional anycast customers.
func (c *Census) SetsByDistinctCount() map[int][]string {
	out := map[int][]string{}
	hosts := make([]string, 0, len(c.Distinct))
	for h := range c.Distinct {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		out[c.Distinct[h]] = append(out[c.Distinct[h]], h)
	}
	return out
}

// RegionalHostnames returns the hostnames with at least two distinct A
// records, i.e. candidates served by a regional anycast platform.
func (c *Census) RegionalHostnames() []string {
	var out []string
	for n, hosts := range c.SetsByDistinctCount() {
		if n >= 2 {
			out = append(out, hosts...)
		}
	}
	sort.Strings(out)
	return out
}
