package cdnfinder

import (
	"testing"

	"anysim/internal/worldgen"
)

var (
	sharedWorld  *worldgen.World
	sharedCensus *Census
)

func fixtures(t *testing.T) (*worldgen.World, *Census) {
	t.Helper()
	if sharedWorld == nil {
		w, err := worldgen.Small(19)
		if err != nil {
			t.Fatal(err)
		}
		clients := ClientPrefixes(w.Platform.Retained())
		sharedCensus = RunCensus(w.Auth, w.Hostnames.All(), clients)
		sharedWorld = w
	}
	return sharedWorld, sharedCensus
}

func TestTable5(t *testing.T) {
	entries := Table5()
	if len(entries) != 15 {
		t.Fatalf("Table5 has %d entries, want 15", len(entries))
	}
	regional := RegionalAnycastProviders()
	if len(regional) != 2 {
		t.Fatalf("regional anycast providers = %v, want exactly 2", regional)
	}
	want := map[string]bool{"Edgio (EdgeCast)": true, "Imperva (Incapsula)": true}
	for _, p := range regional {
		if !want[p] {
			t.Errorf("unexpected regional provider %q", p)
		}
	}
}

func TestClientPrefixes(t *testing.T) {
	w, _ := fixtures(t)
	clients := ClientPrefixes(w.Platform.Retained())
	if len(clients) == 0 {
		t.Fatal("no client prefixes")
	}
	seen := map[string]bool{}
	for _, p := range clients {
		if p.Bits() != 24 {
			t.Errorf("client prefix %v is not a /24", p)
		}
		if seen[p.String()] {
			t.Errorf("duplicate client prefix %v", p)
		}
		seen[p.String()] = true
	}
}

// TestCensusRecoversHostnameSets reproduces §4.2: the census finds exactly
// the 50/34/78 hostname populations by distinct A-record count, and filters
// out the single-IP services.
func TestCensusRecoversHostnameSets(t *testing.T) {
	w, census := fixtures(t)
	sets := census.SetsByDistinctCount()

	if got := len(sets[3]); got != len(w.Hostnames.EG3) {
		t.Errorf("hostnames with 3 distinct IPs = %d, want %d (Edgio-3)", got, len(w.Hostnames.EG3))
	}
	if got := len(sets[4]); got != len(w.Hostnames.EG4) {
		t.Errorf("hostnames with 4 distinct IPs = %d, want %d (Edgio-4)", got, len(w.Hostnames.EG4))
	}
	if got := len(sets[6]); got != len(w.Hostnames.IM6) {
		t.Errorf("hostnames with 6 distinct IPs = %d, want %d (Imperva-6)", got, len(w.Hostnames.IM6))
	}
	if got := len(sets[1]); got != len(w.Hostnames.EdgioOther)+len(w.Hostnames.ImpervaOther) {
		t.Errorf("single-IP hostnames = %d, want %d", got, len(w.Hostnames.EdgioOther)+len(w.Hostnames.ImpervaOther))
	}

	// The representative hostnames land in their sets.
	if census.Distinct[worldgen.RepEG3] != 3 || census.Distinct[worldgen.RepEG4] != 4 || census.Distinct[worldgen.RepIM6] != 6 {
		t.Errorf("representative hostnames misclassified: %d/%d/%d",
			census.Distinct[worldgen.RepEG3], census.Distinct[worldgen.RepEG4], census.Distinct[worldgen.RepIM6])
	}
}

func TestCensusRecordsAreRegionalVIPs(t *testing.T) {
	w, census := fixtures(t)
	for _, a := range census.Records[worldgen.RepIM6] {
		if _, ok := w.Imperva.IM6.RegionOfVIP(a); !ok {
			t.Errorf("census record %v is not an Imperva-6 regional VIP", a)
		}
	}
}

func TestRegionalHostnames(t *testing.T) {
	w, census := fixtures(t)
	regional := census.RegionalHostnames()
	want := len(w.Hostnames.EG3) + len(w.Hostnames.EG4) + len(w.Hostnames.IM6)
	if len(regional) != want {
		t.Errorf("regional hostnames = %d, want %d", len(regional), want)
	}
	// None of the "other" hostnames appear.
	otherSet := map[string]bool{}
	for _, h := range append(w.Hostnames.EdgioOther, w.Hostnames.ImpervaOther...) {
		otherSet[h] = true
	}
	for _, h := range regional {
		if otherSet[h] {
			t.Errorf("non-regional hostname %s classified as regional", h)
		}
	}
}

func TestCensusEmptyInputs(t *testing.T) {
	w, _ := fixtures(t)
	c := RunCensus(w.Auth, nil, nil)
	if len(c.Distinct) != 0 {
		t.Error("census over no hostnames should be empty")
	}
	c = RunCensus(w.Auth, []string{"nx.example"}, ClientPrefixes(w.Platform.Retained()))
	if c.Distinct["nx.example"] != 0 {
		t.Error("unresolvable hostname should have 0 distinct records")
	}
}
