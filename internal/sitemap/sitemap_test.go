package sitemap

import (
	"testing"

	"anysim/internal/atlas"
	"anysim/internal/geo"
	"anysim/internal/worldgen"
)

var (
	sharedWorld  *worldgen.World
	sharedTraces map[string][]*atlas.Trace // per deployment name
)

func fixtures(t *testing.T) (*worldgen.World, []*atlas.Trace) {
	t.Helper()
	if sharedWorld == nil {
		w, err := worldgen.Small(13)
		if err != nil {
			t.Fatal(err)
		}
		sharedWorld = w
		sharedTraces = map[string][]*atlas.Trace{}
		// Traceroute every probe to every Imperva-6 regional VIP so all
		// announcing sites can be discovered.
		var traces []*atlas.Trace
		for _, p := range w.Platform.Retained() {
			for _, vip := range w.Imperva.IM6.VIPs() {
				if tr, ok := w.Measurer.Traceroute(p, vip); ok && tr.Reached {
					traces = append(traces, tr)
				}
			}
		}
		sharedTraces["IM6"] = traces
	}
	return sharedWorld, sharedTraces["IM6"]
}

func TestCollectPHops(t *testing.T) {
	_, traces := fixtures(t)
	obs := CollectPHops(traces)
	if len(obs) == 0 {
		t.Fatal("no p-hops collected")
	}
	total := 0
	for _, o := range obs {
		total += o.Traces
		if o.MinRTTProbe == nil || o.MinRTTMs < 0 {
			t.Fatalf("bad observation: %+v", o)
		}
	}
	// Every reached trace has exactly one p-hop.
	reached := 0
	for _, tr := range traces {
		if _, ok := tr.PHop(); ok {
			reached++
		}
	}
	if total != reached {
		t.Errorf("observation traces %d != traces with p-hop %d", total, reached)
	}
}

func TestEnumerateDiscoversSites(t *testing.T) {
	w, traces := fixtures(t)
	cfg := DefaultConfig(w.GeoDBs)
	res := Enumerate("IM-6", traces, w.Imperva.Published, cfg)

	if len(res.Sites) == 0 {
		t.Fatal("no sites discovered")
	}
	// Discovered sites must be a subset of the published list.
	pub := map[string]bool{}
	for _, s := range w.Imperva.Published {
		pub[s] = true
	}
	for s := range res.Sites {
		if !pub[s] {
			t.Errorf("discovered non-published site %s", s)
		}
	}
	// The pipeline should uncover the bulk of the 48 active sites (the
	// paper uncovers 48 of 50 published).
	if len(res.Sites) < 36 {
		t.Errorf("discovered only %d sites, want most of 48", len(res.Sites))
	}
	// Manila is not an Imperva-6 site and must not be discovered.
	if res.Sites["MNL"] {
		t.Error("discovered MNL, which does not announce Imperva-6 prefixes")
	}
}

func TestEnumerateAccuracy(t *testing.T) {
	w, traces := fixtures(t)
	cfg := DefaultConfig(w.GeoDBs)
	res := Enumerate("IM-6", traces, w.Imperva.Published, cfg)

	// Check resolved p-hops against ground truth: the resolution should
	// usually match the p-hop's true city (or at least country).
	truthCity := map[string]string{}
	for _, tr := range traces {
		if ph, ok := tr.PHop(); ok {
			truthCity[ph.Addr.String()] = ph.City
		}
	}
	var resolved, cityRight, countryRight int
	for addr, r := range res.PHops {
		if r.Technique == Unresolved {
			continue
		}
		resolved++
		want := truthCity[addr.String()]
		if r.City == want {
			cityRight++
		}
		if geo.MustCity(r.City).Country == geo.MustCity(want).Country {
			countryRight++
		}
	}
	if resolved == 0 {
		t.Fatal("nothing resolved")
	}
	if frac := float64(cityRight) / float64(resolved); frac < 0.70 {
		t.Errorf("city-level accuracy %.2f, want >= 0.70", frac)
	}
	if frac := float64(countryRight) / float64(resolved); frac < 0.85 {
		t.Errorf("country-level accuracy %.2f, want >= 0.85", frac)
	}
}

func TestFigure3Fractions(t *testing.T) {
	w, traces := fixtures(t)
	res := Enumerate("IM-6", traces, w.Imperva.Published, DefaultConfig(w.GeoDBs))

	var phopSum, traceSum float64
	for _, tech := range Techniques {
		phopSum += res.PHopFraction(tech)
		traceSum += res.TraceFraction(tech)
	}
	if phopSum < 0.999 || phopSum > 1.001 || traceSum < 0.999 || traceSum > 1.001 {
		t.Errorf("fractions don't sum to 1: phop=%.3f trace=%.3f", phopSum, traceSum)
	}
	// rDNS dominates, per Figure 3.
	if res.PHopFraction(ByRDNS) < res.PHopFraction(ByRTTRange) ||
		res.PHopFraction(ByRDNS) < res.PHopFraction(ByCountryIPGeo) {
		t.Errorf("rDNS should dominate: %v=%0.2f %v=%0.2f %v=%0.2f",
			ByRDNS, res.PHopFraction(ByRDNS), ByRTTRange, res.PHopFraction(ByRTTRange),
			ByCountryIPGeo, res.PHopFraction(ByCountryIPGeo))
	}
	// Unresolved stays a small minority (2.3%-9.9% of valid traces in the
	// paper; allow some slack).
	if f := res.TraceFraction(Unresolved); f > 0.25 {
		t.Errorf("unresolved trace fraction %.2f too high", f)
	}
}

func TestSingleSiteIn(t *testing.T) {
	published := []string{"FRA", "MUC", "SIN", "SAO"}
	if _, ok := singleSiteIn("DE", published); ok {
		t.Error("two German sites should not resolve")
	}
	site, ok := singleSiteIn("SG", published)
	if !ok || site != "SIN" {
		t.Errorf("singleSiteIn(SG) = %v, %v", site, ok)
	}
	if _, ok := singleSiteIn("JP", published); ok {
		t.Error("no Japanese site should not resolve")
	}
}

func TestNearestSite(t *testing.T) {
	published := []string{"FRA", "SIN"}
	// Amsterdam maps to Frankfurt, not Singapore.
	if got := nearestSite("AMS", published); got != "FRA" {
		t.Errorf("nearestSite(AMS) = %s", got)
	}
	if got := nearestSite("ZZZ", published); got != "" {
		t.Errorf("nearestSite(unknown) = %s", got)
	}
}

func TestEnumerateEmptyInput(t *testing.T) {
	w, _ := fixtures(t)
	res := Enumerate("empty", nil, w.Imperva.Published, DefaultConfig(w.GeoDBs))
	if res.TotalTraces != 0 || len(res.Sites) != 0 {
		t.Errorf("empty enumeration non-empty: %+v", res)
	}
	if res.PHopFraction(ByRDNS) != 0 {
		t.Error("fractions over empty result should be 0")
	}
}
