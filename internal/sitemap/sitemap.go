// Package sitemap implements the paper's anycast site-enumeration pipeline
// (§4.4 and Appendix B): it geolocates the penultimate hop (p-hop) of each
// traceroute using, in order, (1) geographic hints in the p-hop's
// reverse-DNS name, (2) the RTT-range technique — the location of a probe
// that traversed the p-hop with an RTT inside the metro-scale threshold,
// cross-checked against geolocation databases and the speed of light — and
// (3) country-level IP-geolocation consensus when the operator lists exactly
// one site in the agreed country. Resolved p-hops are mapped to the nearest
// published CDN site, yielding the set of sites announcing each prefix
// (Table 1) and the per-technique attribution (Figure 3).
package sitemap

import (
	"net/netip"
	"sort"

	"anysim/internal/atlas"
	"anysim/internal/geo"
	"anysim/internal/geodb"
	"anysim/internal/rdns"
)

// Technique identifies which Appendix-B step resolved a p-hop.
type Technique uint8

// Resolution techniques in pipeline order.
const (
	ByRDNS Technique = iota
	ByRTTRange
	ByCountryIPGeo
	Unresolved
)

var techniqueNames = map[Technique]string{
	ByRDNS:         "rDNS",
	ByRTTRange:     "RTT Range",
	ByCountryIPGeo: "Country-level IPGeo",
	Unresolved:     "Unresolved",
}

// String names the technique as in Figure 3's legend.
func (t Technique) String() string { return techniqueNames[t] }

// Techniques lists all techniques in presentation order.
var Techniques = []Technique{ByRDNS, ByRTTRange, ByCountryIPGeo, Unresolved}

// Config parameterises the pipeline.
type Config struct {
	// RTTThresholdMs is the RTT-range threshold: a probe within this RTT
	// of the p-hop localises it to the probe's metro (default 1.5 ms,
	// ~150 km of fibre).
	RTTThresholdMs float64
	// DBs are the geolocation databases consulted by the RTT-range and
	// country-level steps.
	DBs []*geodb.DB
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig(dbs []*geodb.DB) Config {
	return Config{RTTThresholdMs: 1.5, DBs: dbs}
}

// PHopObservation aggregates every traceroute crossing one p-hop address.
type PHopObservation struct {
	Addr netip.Addr
	RDNS string
	// MinRTTProbe is the probe observing the lowest RTT to the p-hop.
	MinRTTProbe *atlas.Probe
	MinRTTMs    float64
	Traces      int // traceroutes whose p-hop this is
}

// Resolution is the pipeline outcome for one p-hop.
type Resolution struct {
	Addr      netip.Addr
	Technique Technique
	City      string // resolved city (IATA), "" when unresolved
	SiteCity  string // nearest published site's city, "" when unresolved
}

// Result is the full enumeration outcome for one network.
type Result struct {
	Network string
	// PHops maps p-hop address to its resolution.
	PHops map[netip.Addr]*Resolution
	// TraceCounts[t] is the number of traceroutes whose p-hop was
	// resolved by technique t (Figure 3's "traces" bars).
	TraceCounts map[Technique]int
	// PHopCounts[t] is the same at p-hop granularity ("p-hops" bars).
	PHopCounts map[Technique]int
	// Sites is the discovered set of announcing sites (city IATA codes).
	Sites map[string]bool
	// TotalTraces counts traceroutes with a valid p-hop.
	TotalTraces int
}

// PHopFraction returns the share of p-hops resolved by the technique.
func (r *Result) PHopFraction(t Technique) float64 {
	total := 0
	for _, n := range r.PHopCounts {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(r.PHopCounts[t]) / float64(total)
}

// TraceFraction returns the share of traceroutes resolved by the technique.
func (r *Result) TraceFraction(t Technique) float64 {
	if r.TotalTraces == 0 {
		return 0
	}
	return float64(r.TraceCounts[t]) / float64(r.TotalTraces)
}

// SiteList returns the discovered sites sorted by city code.
func (r *Result) SiteList() []string {
	out := make([]string, 0, len(r.Sites))
	for s := range r.Sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SiteCountsByArea tabulates discovered sites per paper area (Table 1).
func (r *Result) SiteCountsByArea() map[geo.Area]int {
	out := map[geo.Area]int{}
	for s := range r.Sites {
		out[geo.MustCity(s).Area()]++
	}
	return out
}

// CollectPHops aggregates traceroutes by p-hop address.
func CollectPHops(traces []*atlas.Trace) map[netip.Addr]*PHopObservation {
	out := map[netip.Addr]*PHopObservation{}
	for _, tr := range traces {
		ph, ok := tr.PHop()
		if !ok {
			continue
		}
		obs := out[ph.Addr]
		if obs == nil {
			obs = &PHopObservation{Addr: ph.Addr, RDNS: ph.RDNS, MinRTTMs: ph.RTTMs, MinRTTProbe: tr.Probe}
			out[ph.Addr] = obs
		}
		obs.Traces++
		if ph.RTTMs < obs.MinRTTMs {
			obs.MinRTTMs = ph.RTTMs
			obs.MinRTTProbe = tr.Probe
		}
	}
	return out
}

// Enumerate runs the pipeline over a network's traceroutes.
//
// publishedSites is the operator's published PoP list (city IATA codes),
// the ground truth the paper maps p-hops onto.
func Enumerate(network string, traces []*atlas.Trace, publishedSites []string, cfg Config) *Result {
	res := &Result{
		Network:     network,
		PHops:       map[netip.Addr]*Resolution{},
		TraceCounts: map[Technique]int{},
		PHopCounts:  map[Technique]int{},
		Sites:       map[string]bool{},
	}
	observations := CollectPHops(traces)
	addrs := make([]netip.Addr, 0, len(observations))
	for a := range observations {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].String() < addrs[j].String() })

	for _, a := range addrs {
		obs := observations[a]
		r := resolvePHop(obs, publishedSites, cfg)
		res.PHops[a] = r
		res.PHopCounts[r.Technique]++
		res.TraceCounts[r.Technique] += obs.Traces
		res.TotalTraces += obs.Traces
		if r.SiteCity != "" {
			res.Sites[r.SiteCity] = true
		}
	}
	return res
}

// resolvePHop applies the three techniques in order.
func resolvePHop(obs *PHopObservation, published []string, cfg Config) *Resolution {
	// Technique 1: rDNS geo-hints.
	if obs.RDNS != "" {
		if hint, ok := rdns.Extract(obs.RDNS); ok {
			if hint.City != "" {
				return &Resolution{
					Addr:      obs.Addr,
					Technique: ByRDNS,
					City:      hint.City,
					SiteCity:  nearestSite(hint.City, published),
				}
			}
			// ccTLD country hint: usable when the operator lists exactly
			// one site in that country.
			if site, ok := singleSiteIn(hint.Country, published); ok {
				return &Resolution{Addr: obs.Addr, Technique: ByRDNS, City: site, SiteCity: site}
			}
		}
	}

	// Technique 2: RTT range. A probe within the threshold pins the p-hop
	// to the probe's metro; the geolocation databases provide candidate
	// locations, filtered by the speed-of-light constraint, and the valid
	// candidate closest to the probe wins.
	if obs.MinRTTProbe != nil && obs.MinRTTMs < cfg.RTTThresholdMs {
		probe := obs.MinRTTProbe
		maxKm := geo.RTTRangeKm(cfg.RTTThresholdMs)
		var best string
		bestDist := -1.0
		for _, db := range cfg.DBs {
			loc, ok := db.Lookup(obs.Addr)
			if !ok || loc.City == "" {
				continue
			}
			c, ok := geo.CityByIATA(loc.City)
			if !ok {
				continue
			}
			d := geo.DistanceKm(probe.Coord, c.Coord)
			if d > maxKm {
				continue // violates the speed-of-light constraint
			}
			if bestDist < 0 || d < bestDist {
				best, bestDist = c.IATA, d
			}
		}
		if best != "" {
			return &Resolution{
				Addr:      obs.Addr,
				Technique: ByRTTRange,
				City:      best,
				SiteCity:  nearestSite(best, published),
			}
		}
	}

	// Technique 3: country-level IPGeo consensus + single listed site.
	if cc, ok := geodb.ConsensusCountry(cfg.DBs, obs.Addr); ok {
		if site, ok := singleSiteIn(cc, published); ok {
			return &Resolution{Addr: obs.Addr, Technique: ByCountryIPGeo, City: site, SiteCity: site}
		}
	}
	return &Resolution{Addr: obs.Addr, Technique: Unresolved}
}

// nearestSite maps a resolved city to the closest published site city.
func nearestSite(city string, published []string) string {
	c, ok := geo.CityByIATA(city)
	if !ok {
		return ""
	}
	best, bestDist := "", -1.0
	for _, s := range published {
		sc, ok := geo.CityByIATA(s)
		if !ok {
			continue
		}
		d := geo.DistanceKm(c.Coord, sc.Coord)
		if bestDist < 0 || d < bestDist {
			best, bestDist = s, d
		}
	}
	return best
}

// singleSiteIn returns the operator's site in the country when exactly one
// is listed.
func singleSiteIn(cc string, published []string) (string, bool) {
	var found string
	for _, s := range published {
		c, ok := geo.CityByIATA(s)
		if !ok || c.Country != cc {
			continue
		}
		if found != "" {
			return "", false
		}
		found = s
	}
	return found, found != ""
}
