package policy

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"net/netip"
	"os"
	"strconv"
	"strings"

	"anysim/internal/topo"
)

// The policy language is line-oriented:
//
//	# comment (blank lines ignored)
//	policy <name>
//	import [match-term ...] -> <action> [<action> ...]
//	export [match-term ...] -> <action> [<action> ...]
//
// Match terms (all optional, AND-ed; an absent term is a wildcard):
//
//	class <customer|peer|rs-peer|provider>
//	neighbor <asn>
//	prefix <cidr>
//	metro <IATA>
//	community <high:low | metro:XXX | no-export-metro:XXX | no-peer-metro:XXX>
//
// Actions: accept | reject | add-community <c> | strip-community <c> |
// set-local-pref <n> | tag-metro. The first accept/reject reached during
// evaluation is terminal; the rest accumulate.

// Parse reads a policy from a reader. name labels errors (a file path).
func Parse(r io.Reader, name string) (*Policy, error) {
	p := New("", nil, nil)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", name, lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "policy":
			if len(fields) != 2 {
				return nil, fail("policy wants exactly one name")
			}
			p.Name = fields[1]
		case "import", "export":
			rule, err := parseRule(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			if fields[0] == "import" {
				p.Imports = append(p.Imports, rule)
			} else {
				p.Exports = append(p.Exports, rule)
			}
		default:
			return nil, fail("unknown directive %q (want policy, import, or export)", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	if p.Name == "" {
		return nil, fmt.Errorf("%s: missing 'policy <name>' line", name)
	}
	return p, nil
}

// Load reads a policy file from disk.
func Load(path string) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("policy: %v", err)
	}
	defer f.Close()
	return Parse(f, path)
}

// MustParse parses a policy from source text, panicking on error. For
// tests and compiled-in experiment policies.
func MustParse(src string) *Policy {
	p, err := Parse(strings.NewReader(src), "inline")
	if err != nil {
		panic(err)
	}
	return p
}

func parseRule(fields []string) (Rule, error) {
	var r Rule
	i := 0
	// Match terms up to the "->" separator.
	for ; i < len(fields) && fields[i] != "->"; i += 2 {
		if i+1 >= len(fields) {
			return r, fmt.Errorf("match term %q wants a value", fields[i])
		}
		val := fields[i+1]
		var err error
		switch fields[i] {
		case "class":
			r.Class, err = ParseNeighborClass(val)
		case "neighbor":
			var n uint64
			n, err = strconv.ParseUint(val, 10, 32)
			r.Neighbor = topo.ASN(n)
		case "prefix":
			r.Prefix, err = netip.ParsePrefix(val)
		case "metro":
			if _, err = metroCode(val); err == nil {
				r.Metro = val
			}
		case "community":
			r.Comm, err = ParseCommunity(val)
			r.HasComm = true
		default:
			return r, fmt.Errorf("unknown match term %q", fields[i])
		}
		if err != nil {
			return r, err
		}
	}
	if i >= len(fields) {
		return r, fmt.Errorf("rule has no '->' action separator")
	}
	i++ // skip "->"
	if i >= len(fields) {
		return r, fmt.Errorf("rule has no actions after '->'")
	}
	for i < len(fields) {
		var a Action
		switch fields[i] {
		case "accept":
			a.Kind = Accept
		case "reject":
			a.Kind = Reject
		case "tag-metro":
			a.Kind = TagMetro
		case "add-community", "strip-community":
			if i+1 >= len(fields) {
				return r, fmt.Errorf("%s wants a community", fields[i])
			}
			c, err := ParseCommunity(fields[i+1])
			if err != nil {
				return r, err
			}
			a.Comm = c
			a.Kind = AddCommunity
			if fields[i] == "strip-community" {
				a.Kind = StripCommunity
			}
			i++
		case "set-local-pref":
			if i+1 >= len(fields) {
				return r, fmt.Errorf("set-local-pref wants a number")
			}
			lp, err := strconv.Atoi(fields[i+1])
			if err != nil || lp <= 0 {
				return r, fmt.Errorf("set-local-pref %q is not a positive integer", fields[i+1])
			}
			a.Kind, a.LocalPref = SetLocalPref, lp
			i++
		default:
			return r, fmt.Errorf("unknown action %q", fields[i])
		}
		r.Actions = append(r.Actions, a)
		i++
	}
	return r, nil
}

// Canonical renders the policy in a normal form: the name line, then every
// import rule in order, then every export rule. Two policies with the same
// canonical form behave identically.
func (p *Policy) Canonical() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s\n", p.Name)
	for _, r := range p.Imports {
		fmt.Fprintf(&b, "import %s\n", r.String())
	}
	for _, r := range p.Exports {
		fmt.Fprintf(&b, "export %s\n", r.String())
	}
	return b.String()
}

// Hash returns a short stable identity for the policy's behaviour: FNV-64a
// over the canonical rendering. A nil policy hashes to "" so no-policy runs
// keep their existing identity.
func (p *Policy) Hash() string {
	if p == nil {
		return ""
	}
	h := fnv.New64a()
	io.WriteString(h, p.Canonical())
	return fmt.Sprintf("%016x", h.Sum64())
}
