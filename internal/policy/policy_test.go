package policy

import (
	"encoding/json"
	"net/netip"
	"strings"
	"testing"
)

func mustCommunity(t *testing.T, s string) Community {
	t.Helper()
	c, err := ParseCommunity(s)
	if err != nil {
		t.Fatalf("ParseCommunity(%q): %v", s, err)
	}
	return c
}

func TestCommunityRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		high uint16
		low  uint16
		out  string // expected String(); "" = same as in
	}{
		{"65000:120", 65000, 120, ""},
		{"0:0", 0, 0, ""},
		{"65535:65535", 65535, 65535, ""},
		{"metro:FRA", MetroTagNS, 3822, ""},
		{"no-export-metro:SIN", NoExportMetroNS, 12389, ""},
		{"no-peer-metro:AAA", NoPeerMetroNS, 0, ""},
		// Numeric form of a well-known community renders symbolically.
		{"64910:3822", MetroTagNS, 3822, "metro:FRA"},
	}
	for _, tc := range cases {
		c := mustCommunity(t, tc.in)
		if c.High() != tc.high || c.Low() != tc.low {
			t.Errorf("%q: got %d:%d, want %d:%d", tc.in, c.High(), c.Low(), tc.high, tc.low)
		}
		want := tc.out
		if want == "" {
			want = tc.in
		}
		if c.String() != want {
			t.Errorf("%q: String() = %q, want %q", tc.in, c.String(), want)
		}
		back := mustCommunity(t, c.String())
		if back != c {
			t.Errorf("%q: round-trip %q parsed to different community", tc.in, c.String())
		}
	}
	for _, bad := range []string{"", "65000", "x:y", "70000:1", "1:70000", "metro:fra", "metro:FRAN"} {
		if _, err := ParseCommunity(bad); err == nil {
			t.Errorf("ParseCommunity(%q): want error", bad)
		}
	}
}

func TestCommunityJSON(t *testing.T) {
	c, err := NoPeerMetro("FRA")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"no-peer-metro:FRA"` {
		t.Fatalf("marshal = %s, want %q", b, "no-peer-metro:FRA")
	}
	var back Community
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("unmarshal = %v, want %v", back, c)
	}
}

func TestMetroCommunities(t *testing.T) {
	tag, _ := MetroTag("FRA")
	noexp, _ := NoExportMetro("FRA")
	nopeer, _ := NoPeerMetro("FRA")
	if tag.Low() != noexp.Low() || tag.Low() != nopeer.Low() {
		t.Fatalf("metro code differs across namespaces: %d %d %d", tag.Low(), noexp.Low(), nopeer.Low())
	}
	if tag.High() != MetroTagNS || noexp.High() != NoExportMetroNS || nopeer.High() != NoPeerMetroNS {
		t.Fatal("wrong namespace halves")
	}
	for _, bad := range []string{"", "FR", "FRAN", "fra", "F1A"} {
		if _, err := MetroTag(bad); err == nil {
			t.Errorf("MetroTag(%q): want error", bad)
		}
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	a := mustCommunity(t, "65000:1")
	b := mustCommunity(t, "65000:2")

	s1 := in.Intern([]Community{b, a, a})
	s2 := in.Intern([]Community{a, b})
	if s1 != s2 {
		t.Fatal("equal sets interned to different pointers")
	}
	if got := s1.String(); got != "65000:1 65000:2" {
		t.Fatalf("canonical order: got %q", got)
	}
	if in.Intern(nil) != nil || in.Intern([]Community{}) != nil {
		t.Fatal("empty input must intern to nil")
	}
	// The input slice is not retained: mutating it must not change the set.
	src := []Community{a}
	s3 := in.Intern(src)
	src[0] = b
	if !s3.Has(a) || s3.Has(b) {
		t.Fatal("interned set aliases the input slice")
	}
}

func TestSetNilSafety(t *testing.T) {
	var s *Set
	if s.Len() != 0 || s.Has(1) || s.Slice() != nil {
		t.Fatal("nil set must behave as empty")
	}
	if !s.Equal(nil) {
		t.Fatal("nil.Equal(nil) must be true")
	}
	in := NewInterner()
	one := in.Intern([]Community{1})
	if s.Equal(one) || one.Equal(s) {
		t.Fatal("nil vs non-empty must be unequal")
	}
	if s.String() != "(none)" {
		t.Fatalf("nil set String() = %q", s.String())
	}
}

const testPolicy = `# metro offload with a customer carve-out
policy metro-offload
import class customer -> set-local-pref 300 accept
import community 65000:666 -> reject
import -> tag-metro
export metro FRA class peer -> reject
export neighbor 42 prefix 192.0.2.0/24 -> add-community 65000:120
`

func TestParseCanonicalRoundTrip(t *testing.T) {
	p := MustParse(testPolicy)
	if p.Name != "metro-offload" {
		t.Fatalf("name = %q", p.Name)
	}
	if len(p.Imports) != 3 || len(p.Exports) != 2 {
		t.Fatalf("got %d imports, %d exports", len(p.Imports), len(p.Exports))
	}
	// Canonical form reparses to the same canonical form.
	canon := p.Canonical()
	p2, err := Parse(strings.NewReader(canon), "canon")
	if err != nil {
		t.Fatalf("reparse canonical: %v\n%s", err, canon)
	}
	if p2.Canonical() != canon {
		t.Fatalf("canonical not a fixed point:\n%s\nvs\n%s", canon, p2.Canonical())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"import -> accept\n",                        // no policy name
		"policy p\nfrob -> accept\n",                // unknown directive
		"policy p\nimport class nonsense -> accept", // bad class
		"policy p\nimport -> ",                      // no actions
		"policy p\nimport accept",                   // no arrow
		"policy p\nimport -> set-local-pref x",      // bad pref
		"policy p\nimport -> set-local-pref -1",     // negative pref
		"policy p\nimport metro fra -> accept",      // bad metro
		"policy p\nimport community zzz -> accept",  // bad community
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestHash(t *testing.T) {
	var nilPolicy *Policy
	if nilPolicy.Hash() != "" {
		t.Fatal("nil policy must hash to empty string")
	}
	p1 := MustParse(testPolicy)
	p2 := MustParse(testPolicy)
	if p1.Hash() != p2.Hash() {
		t.Fatal("same source must hash identically")
	}
	// Comments and blank lines do not change behaviour, so not the hash.
	p3 := MustParse(strings.ReplaceAll(testPolicy, "# metro offload with a customer carve-out", "\n\n# other words\n"))
	if p3.Hash() != p1.Hash() {
		t.Fatal("comments must not change the hash")
	}
	// A behavioural change does.
	p4 := MustParse(strings.ReplaceAll(testPolicy, "65000:666", "65000:667"))
	if p4.Hash() == p1.Hash() {
		t.Fatal("different rules must hash differently")
	}
}

func TestEvalFirstTerminalWins(t *testing.T) {
	p := MustParse(`policy p
import community 65000:1 -> reject
import -> add-community 65000:9 accept
import -> add-community 65000:10
`)
	sess := Session{Metro: "FRA", Class: Peer}
	// First rule matches: reject, later accumulation never runs.
	in := p.Intern([]Community{mustCommunity(t, "65000:1")})
	if res := p.EvalImport(sess, in); !res.Reject {
		t.Fatal("matching reject rule must reject")
	}
	// Second rule accepts before the third can add 65000:10.
	res := p.EvalImport(sess, nil)
	if res.Reject {
		t.Fatal("unexpected reject")
	}
	if !res.Set.Has(mustCommunity(t, "65000:9")) || res.Set.Has(mustCommunity(t, "65000:10")) {
		t.Fatalf("accept must be terminal: got %v", res.Set)
	}
}

func TestEvalAccumulationAndCOW(t *testing.T) {
	p := MustParse(`policy p
import -> tag-metro
import community metro:FRA -> set-local-pref 300 add-community 65000:5
import -> strip-community 65000:7
`)
	seven := mustCommunity(t, "65000:7")
	in := p.Intern([]Community{seven})
	res := p.EvalImport(Session{Metro: "FRA", Class: Peer}, in)
	if res.Reject {
		t.Fatal("unexpected reject")
	}
	// The added metro tag was visible to the second rule's community match.
	if res.LocalPref != 300 {
		t.Fatalf("LocalPref = %d, want 300", res.LocalPref)
	}
	tag, _ := MetroTag("FRA")
	if !res.Set.Has(tag) || !res.Set.Has(mustCommunity(t, "65000:5")) || res.Set.Has(seven) {
		t.Fatalf("result set wrong: %v", res.Set)
	}
	// Copy-on-write: the input set is untouched.
	if !in.Has(seven) || in.Len() != 1 {
		t.Fatalf("input set mutated: %v", in)
	}
	// Fall-off-the-end with no mutation returns the input set pointer.
	quiet := MustParse("policy q\nimport neighbor 9 -> reject\n")
	if res := quiet.EvalImport(Session{Neighbor: 8}, in); res.Set != in {
		t.Fatal("no-op evaluation must return the input set unchanged")
	}
}

func TestEvalMatchTerms(t *testing.T) {
	pfx := netip.MustParsePrefix("192.0.2.0/24")
	p := MustParse(`policy p
import class customer neighbor 42 prefix 192.0.2.0/24 metro FRA -> reject
`)
	full := Session{Prefix: pfx, Neighbor: 42, Class: Customer, Metro: "FRA"}
	if !p.EvalImport(full, nil).Reject {
		t.Fatal("all terms match: want reject")
	}
	for name, sess := range map[string]Session{
		"class":    {Prefix: pfx, Neighbor: 42, Class: Peer, Metro: "FRA"},
		"neighbor": {Prefix: pfx, Neighbor: 41, Class: Customer, Metro: "FRA"},
		"prefix":   {Prefix: netip.MustParsePrefix("198.51.100.0/24"), Neighbor: 42, Class: Customer, Metro: "FRA"},
		"metro":    {Prefix: pfx, Neighbor: 42, Class: Customer, Metro: "SIN"},
	} {
		if p.EvalImport(sess, nil).Reject {
			t.Errorf("mismatched %s term must not match", name)
		}
	}
}

func TestScopeRejects(t *testing.T) {
	in := NewInterner()
	nopeer, _ := NoPeerMetro("FRA")
	noexp, _ := NoExportMetro("SIN")
	set := in.Intern([]Community{nopeer, noexp})

	cases := []struct {
		metro string
		class NeighborClass
		want  bool
	}{
		{"FRA", Peer, true},      // no-peer-metro blocks peers at FRA
		{"FRA", RSPeer, true},    // ... and route servers
		{"FRA", Customer, false}, // ... but not customers
		{"FRA", Provider, false}, // ... or transit
		{"SIN", Provider, true},  // no-export-metro blocks everything at SIN
		{"SIN", Customer, true},
		{"LHR", Peer, false}, // other metros unaffected
	}
	for _, tc := range cases {
		got := ScopeRejects(set, Session{Metro: tc.metro, Class: tc.class})
		if got != tc.want {
			t.Errorf("ScopeRejects at %s/%s = %v, want %v", tc.metro, tc.class, got, tc.want)
		}
	}
	if ScopeRejects(nil, Session{Metro: "FRA", Class: Peer}) {
		t.Fatal("nil set never scope-rejects")
	}
}

func TestLocalPrefClass(t *testing.T) {
	cases := map[int]NeighborClass{
		500: Customer, 300: Customer,
		299: Peer, 200: Peer,
		199: RSPeer, 150: RSPeer,
		149: Provider, 0: Provider,
	}
	for lp, want := range cases {
		if got := LocalPrefClass(lp); got != want {
			t.Errorf("LocalPrefClass(%d) = %v, want %v", lp, got, want)
		}
	}
}

func TestNilPolicyIntern(t *testing.T) {
	var p *Policy
	if p.Intern([]Community{1, 2}) != nil {
		t.Fatal("nil policy must intern to nil")
	}
	if p.Canonical() != "" {
		t.Fatal("nil policy canonical must be empty")
	}
}
