package policy

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"anysim/internal/topo"
)

// NeighborClass is the role of a BGP session's remote end from the
// operator's viewpoint: the neighbour is our customer, our settlement-free
// public peer, a route-server peer, or our transit provider. MatchAny is the
// rule wildcard.
type NeighborClass uint8

// Neighbor classes, in descending preference order of the routes they
// deliver.
const (
	MatchAny NeighborClass = iota
	Customer
	Peer
	RSPeer
	Provider
)

var classNames = map[NeighborClass]string{
	MatchAny: "any",
	Customer: "customer",
	Peer:     "peer",
	RSPeer:   "rs-peer",
	Provider: "provider",
}

// String returns the class keyword used by the policy language.
func (c NeighborClass) String() string {
	if n, ok := classNames[c]; ok {
		return n
	}
	return "unknown"
}

// ParseNeighborClass parses a class keyword.
func ParseNeighborClass(s string) (NeighborClass, error) {
	for c, n := range classNames {
		if c != MatchAny && n == s {
			return c, nil
		}
	}
	return MatchAny, fmt.Errorf("policy: unknown neighbor class %q", s)
}

// LocalPrefClass maps a numeric set-local-pref value onto the engine's four
// preference bands, mirroring the conventional operator numbering:
// customers >= 300, public peers 200–299, route-server peers 150–199,
// providers below 150.
func LocalPrefClass(lp int) NeighborClass {
	switch {
	case lp >= 300:
		return Customer
	case lp >= 200:
		return Peer
	case lp >= 150:
		return RSPeer
	default:
		return Provider
	}
}

// ActionKind enumerates policy actions. Accept and Reject are terminal: the
// first one reached ends evaluation. The others accumulate and evaluation
// continues with the next matching rule.
type ActionKind uint8

// Policy actions.
const (
	Accept ActionKind = iota
	Reject
	AddCommunity
	StripCommunity
	SetLocalPref
	TagMetro
)

// Action is one policy action. Comm is used by AddCommunity/StripCommunity,
// LocalPref by SetLocalPref.
type Action struct {
	Kind      ActionKind
	Comm      Community
	LocalPref int
}

// String renders the action in policy-language form.
func (a Action) String() string {
	switch a.Kind {
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	case AddCommunity:
		return "add-community " + a.Comm.String()
	case StripCommunity:
		return "strip-community " + a.Comm.String()
	case SetLocalPref:
		return "set-local-pref " + strconv.Itoa(a.LocalPref)
	case TagMetro:
		return "tag-metro"
	}
	return "unknown"
}

// Rule is one policy rule: a conjunction of match terms (zero values are
// wildcards) and the actions applied on match. Rules are evaluated in file
// order; added communities are visible to later rules' community matches.
type Rule struct {
	Class    NeighborClass
	Neighbor topo.ASN
	Prefix   netip.Prefix
	Metro    string
	Comm     Community
	HasComm  bool
	Actions  []Action
}

// String renders the rule's match-and-action body (without the import/export
// direction keyword).
func (r Rule) String() string {
	var b strings.Builder
	if r.Class != MatchAny {
		fmt.Fprintf(&b, "class %s ", r.Class)
	}
	if r.Neighbor != 0 {
		fmt.Fprintf(&b, "neighbor %d ", r.Neighbor)
	}
	if r.Prefix.IsValid() {
		fmt.Fprintf(&b, "prefix %s ", r.Prefix)
	}
	if r.Metro != "" {
		fmt.Fprintf(&b, "metro %s ", r.Metro)
	}
	if r.HasComm {
		fmt.Fprintf(&b, "community %s ", r.Comm)
	}
	b.WriteString("->")
	for _, a := range r.Actions {
		b.WriteString(" " + a.String())
	}
	return b.String()
}

// Session identifies one BGP session a route is crossing: the prefix, the
// remote neighbour, its class from the operator's viewpoint, and the metro
// the session lives at.
type Session struct {
	Prefix   netip.Prefix
	Neighbor topo.ASN
	Class    NeighborClass
	Metro    string
}

func (r *Rule) matches(sess Session, comms []Community) bool {
	if r.Class != MatchAny && r.Class != sess.Class {
		return false
	}
	if r.Neighbor != 0 && r.Neighbor != sess.Neighbor {
		return false
	}
	if r.Prefix.IsValid() && r.Prefix != sess.Prefix {
		return false
	}
	if r.Metro != "" && r.Metro != sess.Metro {
		return false
	}
	if r.HasComm && !hasComm(comms, r.Comm) {
		return false
	}
	return true
}

func hasComm(cs []Community, c Community) bool {
	for _, e := range cs {
		if e == c {
			return true
		}
	}
	return false
}

// Result is the outcome of evaluating one rule chain over one session.
type Result struct {
	// Reject reports the route was filtered; the other fields are then
	// meaningless.
	Reject bool
	// Set is the resulting interned community set.
	Set *Set
	// LocalPref is the import preference override (0 = none set).
	LocalPref int
}

// Policy is a parsed per-neighbor policy: an ordered import chain and an
// ordered export chain, plus the interner that canonicalises every community
// set the policy produces. A nil *Policy means "no policy layer" and is the
// engine's zero-cost default.
type Policy struct {
	Name     string
	Imports  []Rule
	Exports  []Rule
	interner *Interner
}

// New builds a policy from already-constructed rule chains.
func New(name string, imports, exports []Rule) *Policy {
	return &Policy{Name: name, Imports: imports, Exports: exports, interner: NewInterner()}
}

// Intern canonicalises a community slice through the policy's interner.
// Nil-receiver-safe: a nil policy interns everything to the empty set.
func (p *Policy) Intern(cs []Community) *Set {
	if p == nil {
		return nil
	}
	return p.interner.Intern(cs)
}

// EvalImport runs the import chain for a session over an incoming community
// set.
func (p *Policy) EvalImport(sess Session, in *Set) Result {
	return p.eval(p.Imports, sess, in)
}

// EvalExport runs the export chain for a session over an outgoing community
// set.
func (p *Policy) EvalExport(sess Session, in *Set) Result {
	return p.eval(p.Exports, sess, in)
}

// eval walks a rule chain in order. Non-terminal actions accumulate; the
// first Accept or Reject reached wins; a chain that falls off the end
// accepts (BGP's default of announcing what policy does not forbid).
func (p *Policy) eval(rules []Rule, sess Session, in *Set) Result {
	comms := in.Slice()
	changed := false
	lp := 0
	for ri := range rules {
		r := &rules[ri]
		if !r.matches(sess, comms) {
			continue
		}
		for _, a := range r.Actions {
			switch a.Kind {
			case Accept:
				return p.finish(in, comms, changed, lp)
			case Reject:
				return Result{Reject: true}
			case AddCommunity:
				comms, changed = addComm(comms, a.Comm, changed)
			case StripCommunity:
				comms, changed = stripComm(comms, a.Comm, changed)
			case SetLocalPref:
				lp = a.LocalPref
			case TagMetro:
				// A metro outside the IATA namespace simply cannot be
				// tagged; the rule is a deterministic no-op there.
				if tag, err := MetroTag(sess.Metro); err == nil {
					comms, changed = addComm(comms, tag, changed)
				}
			}
		}
	}
	return p.finish(in, comms, changed, lp)
}

func (p *Policy) finish(in *Set, comms []Community, changed bool, lp int) Result {
	set := in
	if changed {
		set = p.interner.Intern(comms)
	}
	return Result{Set: set, LocalPref: lp}
}

// addComm appends c to a working community slice, copying the backing array
// on first mutation so the input set stays immutable.
func addComm(cs []Community, c Community, changed bool) ([]Community, bool) {
	if hasComm(cs, c) {
		return cs, changed
	}
	if !changed {
		cs = append(append([]Community(nil), cs...), c)
	} else {
		cs = append(cs, c)
	}
	return cs, true
}

func stripComm(cs []Community, c Community, changed bool) ([]Community, bool) {
	if !hasComm(cs, c) {
		return cs, changed
	}
	out := cs
	if !changed {
		out = append([]Community(nil), cs...)
	}
	keep := out[:0]
	for _, e := range out {
		if e != c {
			keep = append(keep, e)
		}
	}
	return keep, true
}

// ScopeRejects applies the well-known scope communities: a route carrying
// no-export-metro:<m> must not cross any session at metro m, and one
// carrying no-peer-metro:<m> must not cross public-peer or route-server
// sessions at m. This enforcement is built into the engine whenever a policy
// layer is configured, independent of the policy's rule chains.
func ScopeRejects(s *Set, sess Session) bool {
	if s == nil {
		return false
	}
	for _, c := range s.elems {
		hi := c.High()
		if hi != NoExportMetroNS && hi != NoPeerMetroNS {
			continue
		}
		if metroName(c.Low()) != sess.Metro {
			continue
		}
		if hi == NoExportMetroNS || sess.Class == Peer || sess.Class == RSPeer {
			return true
		}
	}
	return false
}
