// Package policy implements BGP communities and a declarative per-neighbor
// policy layer over them.
//
// A Community is the classic RFC 1997 32-bit tag, written "ASN:value". The
// package reserves three well-known high halves for metro scoping — the
// mechanism DoubleZero's RFC6 metro-routing policy uses to keep same-metro
// traffic off transit:
//
//	64910:<metro>  metro-tag      — informational: route entered at <metro>
//	64911:<metro>  no-export-metro — do not announce over ANY session at <metro>
//	64912:<metro>  no-peer-metro   — do not announce to public/route-server
//	                                 peers at <metro> (transit still hears it)
//
// The low half encodes a 3-letter IATA metro code in base 26
// ((c0-'A')*676 + (c1-'A')*26 + (c2-'A'), max 17575), so a metro community
// round-trips through its numeric form.
//
// Routes carry communities as an interned *Set: canonical (sorted, deduped),
// immutable after interning, with nil meaning "no communities". Interning
// keeps the per-route cost to one pointer and makes set equality cheap, which
// matters because Route values are copied by the million during convergence.
package policy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Community is one RFC 1997 BGP community: high 16 bits are an ASN-like
// namespace, low 16 bits a value within it. The text form is "high:low",
// with the well-known metro communities rendering symbolically
// ("metro:FRA", "no-peer-metro:SIN").
type Community uint32

// Well-known community namespaces (high halves) reserved by this package.
const (
	// MetroTagNS tags the metro a route was announced at.
	MetroTagNS uint16 = 64910
	// NoExportMetroNS forbids announcing the route over any session at the
	// encoded metro.
	NoExportMetroNS uint16 = 64911
	// NoPeerMetroNS forbids announcing the route to public-peer and
	// route-server sessions at the encoded metro; customer and provider
	// sessions still hear it.
	NoPeerMetroNS uint16 = 64912
)

// make32 assembles a community from its halves.
func make32(hi, lo uint16) Community { return Community(uint32(hi)<<16 | uint32(lo)) }

// High returns the namespace half.
func (c Community) High() uint16 { return uint16(c >> 16) }

// Low returns the value half.
func (c Community) Low() uint16 { return uint16(c) }

// metroCode encodes a 3-letter uppercase IATA metro code into 16 bits.
func metroCode(metro string) (uint16, error) {
	if len(metro) != 3 {
		return 0, fmt.Errorf("policy: metro %q is not a 3-letter IATA code", metro)
	}
	code := 0
	for i := 0; i < 3; i++ {
		ch := metro[i]
		if ch < 'A' || ch > 'Z' {
			return 0, fmt.Errorf("policy: metro %q is not a 3-letter IATA code", metro)
		}
		code = code*26 + int(ch-'A')
	}
	return uint16(code), nil
}

// metroName is the inverse of metroCode.
func metroName(code uint16) string {
	if code >= 26*26*26 {
		return ""
	}
	return string([]byte{'A' + byte(code/676), 'A' + byte(code/26%26), 'A' + byte(code%26)})
}

// MetroTag returns the informational metro-tag community for a metro.
func MetroTag(metro string) (Community, error) {
	code, err := metroCode(metro)
	if err != nil {
		return 0, err
	}
	return make32(MetroTagNS, code), nil
}

// NoExportMetro returns the community that blocks every session at a metro.
func NoExportMetro(metro string) (Community, error) {
	code, err := metroCode(metro)
	if err != nil {
		return 0, err
	}
	return make32(NoExportMetroNS, code), nil
}

// NoPeerMetro returns the community that blocks public-peer and route-server
// sessions at a metro.
func NoPeerMetro(metro string) (Community, error) {
	code, err := metroCode(metro)
	if err != nil {
		return 0, err
	}
	return make32(NoPeerMetroNS, code), nil
}

var wellKnownNames = map[uint16]string{
	MetroTagNS:      "metro",
	NoExportMetroNS: "no-export-metro",
	NoPeerMetroNS:   "no-peer-metro",
}

// String renders the community: symbolic for the well-known metro
// namespaces, "high:low" otherwise.
func (c Community) String() string {
	if name, ok := wellKnownNames[c.High()]; ok {
		if m := metroName(c.Low()); m != "" {
			return name + ":" + m
		}
	}
	return strconv.Itoa(int(c.High())) + ":" + strconv.Itoa(int(c.Low()))
}

// ParseCommunity parses "high:low" or a symbolic metro form
// ("metro:FRA", "no-export-metro:FRA", "no-peer-metro:FRA").
func ParseCommunity(s string) (Community, error) {
	head, tail, ok := strings.Cut(s, ":")
	if !ok {
		return 0, fmt.Errorf("policy: community %q is not high:low", s)
	}
	for ns, name := range wellKnownNames {
		if head == name {
			code, err := metroCode(tail)
			if err != nil {
				return 0, fmt.Errorf("policy: community %q: %v", s, err)
			}
			return make32(ns, code), nil
		}
	}
	hi, err := strconv.ParseUint(head, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("policy: community %q has a bad high half", s)
	}
	lo, err := strconv.ParseUint(tail, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("policy: community %q has a bad low half", s)
	}
	return make32(uint16(hi), uint16(lo)), nil
}

// MarshalText renders the community in its text form, so JSON state files
// show "no-peer-metro:FRA" instead of an opaque integer.
func (c Community) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses the text form.
func (c *Community) UnmarshalText(b []byte) error {
	v, err := ParseCommunity(string(b))
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// Set is an immutable, canonical (sorted, deduplicated) community set.
// A nil *Set is the empty set; every method is nil-receiver-safe. Sets are
// produced only by an Interner, so pointer identity implies equality within
// one interner — but Equal compares content and is correct across interners.
type Set struct {
	elems []Community
}

// Len returns the number of communities in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.elems)
}

// Has reports membership.
func (s *Set) Has(c Community) bool {
	if s == nil {
		return false
	}
	for _, e := range s.elems {
		if e == c {
			return true
		}
	}
	return false
}

// Slice returns the communities in canonical order. The caller must not
// mutate the returned slice.
func (s *Set) Slice() []Community {
	if s == nil {
		return nil
	}
	return s.elems
}

// Equal reports whether two sets hold the same communities.
func (s *Set) Equal(o *Set) bool {
	if s == o {
		return true
	}
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.elems {
		if s.elems[i] != o.elems[i] {
			return false
		}
	}
	return true
}

// String renders the set as space-joined communities.
func (s *Set) String() string {
	if s.Len() == 0 {
		return "(none)"
	}
	parts := make([]string, len(s.elems))
	for i, c := range s.elems {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ")
}

// Interner canonicalises community slices into shared *Set values. It is
// safe for concurrent use; forks of an engine share their policy's interner,
// so full and incremental reconvergence of the same world produce
// pointer-identical sets.
type Interner struct {
	mu   sync.Mutex
	sets map[string]*Set
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{sets: make(map[string]*Set)}
}

// canonical sorts and dedups a community slice in place.
func canonical(cs []Community) []Community {
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	out := cs[:0]
	for i, c := range cs {
		if i == 0 || c != cs[i-1] {
			out = append(out, c)
		}
	}
	return out
}

// Intern returns the canonical shared Set for a community slice. The input
// is not retained. An empty input interns to nil (the empty set).
func (in *Interner) Intern(cs []Community) *Set {
	if len(cs) == 0 {
		return nil
	}
	canon := canonical(append([]Community(nil), cs...))
	if len(canon) == 0 {
		return nil
	}
	var key strings.Builder
	key.Grow(len(canon) * 4)
	for _, c := range canon {
		key.WriteByte(byte(c >> 24))
		key.WriteByte(byte(c >> 16))
		key.WriteByte(byte(c >> 8))
		key.WriteByte(byte(c))
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if s, ok := in.sets[key.String()]; ok {
		return s
	}
	s := &Set{elems: canon}
	in.sets[key.String()] = s
	return s
}
