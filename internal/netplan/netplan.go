// Package netplan performs deterministic IPv4 address planning for the
// simulated Internet: per-AS address blocks, router interface addresses,
// probe addresses, and anycast prefixes. All allocation is sequential from
// fixed base blocks, so a world built from the same seed always receives the
// same addresses.
package netplan

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Well-known base blocks. The anycast block deliberately uses the
// benchmarking range (RFC 2544) to make simulated anycast prefixes easy to
// recognise in traces; AS space comes from a large low block.
var (
	// ASBase is the block AS address space is carved from.
	ASBase = netip.MustParsePrefix("16.0.0.0/4")
	// AnycastBase is the block anycast prefixes are carved from.
	AnycastBase = netip.MustParsePrefix("198.18.0.0/15")
	// ResolverBase is the block public resolver addresses are carved from.
	ResolverBase = netip.MustParsePrefix("9.9.0.0/16")
	// IXPBase is the block IXP peering-fabric prefixes are carved from.
	// IXP fabric addresses are not announced in BGP, mirroring the paper's
	// finding that 49% of penultimate-hop IPs belong to IXPs and are
	// invisible in BGP tables.
	IXPBase = netip.MustParsePrefix("185.1.0.0/16")
)

// Allocator hands out consecutive, non-overlapping sub-prefixes of a base
// IPv4 prefix. It is not safe for concurrent use.
type Allocator struct {
	base netip.Prefix
	next uint32 // offset of the next free address relative to base
	size uint32 // total addresses in base
}

// NewAllocator returns an allocator over the base prefix. The base must be a
// valid IPv4 prefix.
func NewAllocator(base netip.Prefix) *Allocator {
	if !base.IsValid() || !base.Addr().Is4() {
		panic("netplan: allocator base must be a valid IPv4 prefix")
	}
	base = base.Masked()
	return &Allocator{
		base: base,
		size: blockSize(base.Bits()),
	}
}

func blockSize(bits int) uint32 {
	if bits == 0 {
		return 0 // entire v4 space; treated as "effectively unbounded"
	}
	return uint32(1) << (32 - bits)
}

// Prefix allocates the next /bits prefix, aligning as required.
func (a *Allocator) Prefix(bits int) (netip.Prefix, error) {
	if bits < a.base.Bits() || bits > 32 {
		return netip.Prefix{}, fmt.Errorf("netplan: cannot allocate /%d from %s", bits, a.base)
	}
	sz := blockSize(bits)
	// Align next up to a multiple of the block size.
	aligned := (a.next + sz - 1) / sz * sz
	if a.size != 0 && aligned+sz > a.size {
		return netip.Prefix{}, fmt.Errorf("netplan: %s exhausted allocating /%d", a.base, bits)
	}
	addr := addAddr(a.base.Addr(), aligned)
	a.next = aligned + sz
	return netip.PrefixFrom(addr, bits), nil
}

// MustPrefix is Prefix but panics on exhaustion; for use during world
// generation where exhaustion is a programming error.
func (a *Allocator) MustPrefix(bits int) netip.Prefix {
	p, err := a.Prefix(bits)
	if err != nil {
		panic(err)
	}
	return p
}

// Remaining returns the number of unallocated addresses left in the base.
func (a *Allocator) Remaining() uint32 {
	if a.size == 0 {
		return ^uint32(0) - a.next
	}
	return a.size - a.next
}

// addAddr returns addr + n in IPv4 arithmetic.
func addAddr(addr netip.Addr, n uint32) netip.Addr {
	b := addr.As4()
	v := binary.BigEndian.Uint32(b[:]) + n
	binary.BigEndian.PutUint32(b[:], v)
	return netip.AddrFrom4(b)
}

// NthAddr returns the n-th address inside the prefix (0-based). It panics if
// n does not fit in the prefix, which indicates a planning bug.
func NthAddr(p netip.Prefix, n uint32) netip.Addr {
	if sz := blockSize(p.Bits()); sz != 0 && n >= sz {
		panic(fmt.Sprintf("netplan: address index %d out of range for %s", n, p))
	}
	return addAddr(p.Masked().Addr(), n)
}

// AddrIndex returns the 0-based offset of addr within prefix, and whether
// the address belongs to the prefix at all.
func AddrIndex(p netip.Prefix, addr netip.Addr) (uint32, bool) {
	if !p.Contains(addr) {
		return 0, false
	}
	pb := p.Masked().Addr().As4()
	ab := addr.As4()
	return binary.BigEndian.Uint32(ab[:]) - binary.BigEndian.Uint32(pb[:]), true
}

// CoverPrefix returns the smallest common /24 covering the address, the unit
// the paper uses when emulating a worldwide clientele of /24 client prefixes
// for ECS queries (§4.2).
func CoverPrefix(addr netip.Addr) netip.Prefix {
	return netip.PrefixFrom(addr, 24).Masked()
}
