package netplan

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestAllocatorSequential(t *testing.T) {
	a := NewAllocator(netip.MustParsePrefix("10.0.0.0/8"))
	p1 := a.MustPrefix(16)
	p2 := a.MustPrefix(16)
	if p1.String() != "10.0.0.0/16" || p2.String() != "10.1.0.0/16" {
		t.Errorf("got %s, %s", p1, p2)
	}
}

func TestAllocatorAlignment(t *testing.T) {
	a := NewAllocator(netip.MustParsePrefix("10.0.0.0/8"))
	a.MustPrefix(24)      // 10.0.0.0/24
	p := a.MustPrefix(16) // must align up to 10.1.0.0/16
	if p.String() != "10.1.0.0/16" {
		t.Errorf("aligned alloc = %s, want 10.1.0.0/16", p)
	}
	q := a.MustPrefix(24) // continues after the /16
	if q.String() != "10.2.0.0/24" {
		t.Errorf("follow-up alloc = %s, want 10.2.0.0/24", q)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(netip.MustParsePrefix("192.0.2.0/24"))
	if _, err := a.Prefix(25); err != nil {
		t.Fatalf("first /25: %v", err)
	}
	if _, err := a.Prefix(25); err != nil {
		t.Fatalf("second /25: %v", err)
	}
	if _, err := a.Prefix(25); err == nil {
		t.Error("expected exhaustion error")
	}
	if a.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", a.Remaining())
	}
}

func TestAllocatorRejectsBadSizes(t *testing.T) {
	a := NewAllocator(netip.MustParsePrefix("10.0.0.0/16"))
	if _, err := a.Prefix(8); err == nil {
		t.Error("allocating /8 from /16 should fail")
	}
	if _, err := a.Prefix(33); err == nil {
		t.Error("allocating /33 should fail")
	}
}

func TestAllocatorDisjointProperty(t *testing.T) {
	// Any sequence of allocations yields pairwise-disjoint prefixes.
	f := func(sizes []uint8) bool {
		a := NewAllocator(netip.MustParsePrefix("16.0.0.0/4"))
		var prefixes []netip.Prefix
		for _, s := range sizes {
			bits := 16 + int(s%17) // 16..32
			p, err := a.Prefix(bits)
			if err != nil {
				return true // exhaustion is fine
			}
			prefixes = append(prefixes, p)
		}
		for i := range prefixes {
			for j := i + 1; j < len(prefixes); j++ {
				if prefixes[i].Overlaps(prefixes[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNthAddr(t *testing.T) {
	p := netip.MustParsePrefix("198.18.0.0/24")
	if got := NthAddr(p, 0); got.String() != "198.18.0.0" {
		t.Errorf("NthAddr(0) = %s", got)
	}
	if got := NthAddr(p, 255); got.String() != "198.18.0.255" {
		t.Errorf("NthAddr(255) = %s", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("NthAddr out of range should panic")
		}
	}()
	NthAddr(p, 256)
}

func TestAddrIndex(t *testing.T) {
	p := netip.MustParsePrefix("10.1.0.0/16")
	idx, ok := AddrIndex(p, netip.MustParseAddr("10.1.2.3"))
	if !ok || idx != 2*256+3 {
		t.Errorf("AddrIndex = %d, %v", idx, ok)
	}
	if _, ok := AddrIndex(p, netip.MustParseAddr("10.2.0.0")); ok {
		t.Error("AddrIndex accepted out-of-prefix address")
	}
}

func TestNthAddrRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		p := netip.MustParsePrefix("16.0.0.0/8")
		n %= 1 << 24
		addr := NthAddr(p, n)
		idx, ok := AddrIndex(p, addr)
		return ok && idx == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoverPrefix(t *testing.T) {
	got := CoverPrefix(netip.MustParseAddr("203.0.113.77"))
	if got.String() != "203.0.113.0/24" {
		t.Errorf("CoverPrefix = %s", got)
	}
}

func TestBaseBlocksDisjoint(t *testing.T) {
	bases := []netip.Prefix{ASBase, AnycastBase, ResolverBase}
	for i := range bases {
		for j := i + 1; j < len(bases); j++ {
			if bases[i].Overlaps(bases[j]) {
				t.Errorf("base blocks %s and %s overlap", bases[i], bases[j])
			}
		}
	}
}
