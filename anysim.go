// Package anysim is the public facade of the regional IP anycast
// reproduction: a deterministic Internet simulator (AS-level Gao-Rexford
// policy routing, IXPs with route-server and public peering, a geographic
// latency model, geolocating DNS, and a RIPE-Atlas-like probe platform)
// plus the measurement and analysis methodology of "Regional IP Anycast:
// Deployments, Performance, and Potentials" (ACM SIGCOMM 2023).
//
// Typical use:
//
//	world, err := anysim.NewWorld(anysim.Config{Seed: 7})
//	ctx := anysim.NewExperimentContext(world)
//	reports, err := anysim.RunAllExperiments(ctx)
//
// or, for custom studies, drive the layers directly: world.Engine for
// routing lookups, world.Measurer for pings and traceroutes, and the
// analysis helpers re-exported below.
package anysim

import (
	"io"
	"net/netip"

	"anysim/internal/atlas"
	"anysim/internal/bgp"
	"anysim/internal/cdn"
	"anysim/internal/core"
	"anysim/internal/dynamics"
	"anysim/internal/experiments"
	"anysim/internal/geo"
	"anysim/internal/glass"
	"anysim/internal/obs/ts"
	"anysim/internal/reopt"
	"anysim/internal/server"
	"anysim/internal/sitemap"
	"anysim/internal/topo"
	"anysim/internal/traffic"
	"anysim/internal/worldgen"
)

// World construction.
type (
	// Config parameterises world construction; the zero value (plus a
	// seed) builds the full-scale paper world.
	Config = worldgen.Config
	// World is a fully-wired simulated Internet with the paper's content
	// networks deployed.
	World = worldgen.World
)

// NewWorld builds a world from a config.
func NewWorld(cfg Config) (*World, error) { return worldgen.New(cfg) }

// DefaultWorld builds the full-scale canonical paper world (seed 2023).
func DefaultWorld() (*World, error) { return worldgen.Default() }

// SmallWorld builds a reduced-scale world for quick experiments.
func SmallWorld(seed int64) (*World, error) { return worldgen.Small(seed) }

// Representative customer hostnames (§4.3).
const (
	RepresentativeEdgio3   = worldgen.RepEG3
	RepresentativeEdgio4   = worldgen.RepEG4
	RepresentativeImperva6 = worldgen.RepIM6
)

// Geography.
type (
	// Area is one of the paper's four probe areas.
	Area = geo.Area
)

// The paper's probe areas.
const (
	EMEA  = geo.EMEA
	NA    = geo.NA
	LatAm = geo.LatAm
	APAC  = geo.APAC
)

// Routing and measurement types.
type (
	// Forward is an anycast catchment decision.
	Forward = bgp.Forward
	// Probe is one measurement vantage point.
	Probe = atlas.Probe
	// Trace is a traceroute result.
	Trace = atlas.Trace
	// DNSMode selects the Local-DNS or Authoritative-DNS configuration.
	DNSMode = atlas.DNSMode
	// Deployment is a content network's anycast deployment.
	Deployment = cdn.Deployment
)

// DNS measurement modes.
const (
	LDNS = atlas.LDNS
	ADNS = atlas.ADNS
)

// Campaigns and analyses (the paper's §5 methodology).
type (
	// CampaignResult is one hostname measured from every probe.
	CampaignResult = core.Result
	// Measurement is one probe's record within a campaign.
	Measurement = core.Measurement
	// ProbeGroup is a <city, AS> probe group.
	ProbeGroup = core.Group
	// MappingEfficiency is a Table-2 style DNS-mapping classification.
	MappingEfficiency = core.MappingEfficiency
	// Comparison is the §5.3 regional-vs-global pairing.
	Comparison = core.Comparison
	// CauseBreakdown is the §5.4 cause classification.
	CauseBreakdown = core.CauseBreakdown
)

// RunCampaign measures one hostname of a deployment from the given probes.
func RunCampaign(w *World, dep *Deployment, host string, probes []*Probe) *CampaignResult {
	return core.RunCampaign(w.Measurer, w.Auth, dep, host, probes, core.DefaultCampaignConfig())
}

// AnalyzeDNSMapping classifies a campaign's probe groups per Table 2.
func AnalyzeDNSMapping(res *CampaignResult, mode DNSMode) *MappingEfficiency {
	return core.AnalyzeDNSMapping(res, mode)
}

// CompareRegionalGlobal pairs a regional campaign against a global one
// after the §5.3 site/peer overlap filtering.
func CompareRegionalGlobal(w *World, regional, global *CampaignResult, mode DNSMode) (*Comparison, error) {
	overlap, err := core.ComputeOverlap(w.Topo, regional.Deployment, global.Deployment)
	if err != nil {
		return nil, err
	}
	return core.CompareRegionalGlobal(regional, global, mode, overlap), nil
}

// Site enumeration (§4.4 / Appendix B).
type (
	// EnumerationResult is a site-enumeration outcome with per-technique
	// attribution.
	EnumerationResult = sitemap.Result
)

// EnumerateSites runs the p-hop geolocation pipeline over traceroutes.
func EnumerateSites(w *World, network string, traces []*Trace, published []string) *EnumerationResult {
	return sitemap.Enumerate(network, traces, published, sitemap.DefaultConfig(w.GeoDBs))
}

// ReOpt (§6.1).
type (
	// ReOptSweep is the outcome of the latency-based partition sweep.
	ReOptSweep = reopt.Sweep
	// ReOptCandidate is one evaluated partition.
	ReOptCandidate = reopt.Candidate
)

// RunReOpt executes the ReOpt partition sweep on the world's Tangled
// testbed.
func RunReOpt(w *World, seed int64) (*ReOptSweep, error) {
	return reopt.Run(w.Engine, w.Measurer, w.Tangled, w.Platform.Retained(), reopt.Config{Seed: seed})
}

// Routing dynamics and fault injection (extension X2).
type (
	// Scenario is a schedule of fault and repair events, writable in a
	// line-oriented DSL (see ParseScenario) or generated from a seed.
	Scenario = dynamics.Scenario
	// FaultEvent is one scheduled routing event (site, link, or IXP).
	FaultEvent = dynamics.Event
	// ScenarioRunner applies scenarios to one deployment through the
	// engine's incremental reconvergence API, measuring catchment churn.
	ScenarioRunner = dynamics.Runner
	// ScenarioStep is one applied event with its churn and solver stats.
	ScenarioStep = dynamics.Step
	// ChurnStats aggregates per-AS catchment changes across an event.
	ChurnStats = dynamics.ChurnStats
	// ScenarioGenConfig parameterises the seeded fault-schedule generator.
	ScenarioGenConfig = dynamics.GenConfig
)

// NewScenarioRunner wires a runner for one of the world's deployments,
// with probe-level analyses enabled.
func NewScenarioRunner(w *World, dep *Deployment) *ScenarioRunner {
	r := dynamics.NewRunner(w.Engine, dep)
	r.Measurer = w.Measurer
	r.Probes = w.Platform.Retained()
	return r
}

// ParseScenario reads a scenario from its DSL text.
func ParseScenario(text string) (*Scenario, error) { return dynamics.ParseString(text) }

// GenerateScenario builds a deterministic fault schedule for a deployment.
func GenerateScenario(w *World, dep *Deployment, cfg ScenarioGenConfig) (*Scenario, error) {
	return dynamics.Generate(cfg, w.Topo, dep)
}

// FailoverPenalties extracts per-probe RTT deltas between two probe views.
func FailoverPenalties(pre, post []dynamics.View) []float64 {
	return dynamics.Penalties(pre, post)
}

// Traffic load and steering (extension X3).
type (
	// DemandConfig shapes the seeded per-probe-group demand model.
	DemandConfig = traffic.DemandConfig
	// DemandModel is a deterministic day of client demand: Zipf-skewed
	// group popularity with a longitude-keyed diurnal cycle.
	DemandModel = traffic.Model
	// DemandMatrix is one time bucket's request rate per probe group.
	DemandMatrix = traffic.Matrix
	// CapacityConfig derives per-site serving capacity from the Table-1
	// site tiers and the baseline diurnal peak.
	CapacityConfig = traffic.CapacityConfig
	// LoadEvaluator computes the catchment × demand product for a
	// deployment under the engine's current routing state.
	LoadEvaluator = traffic.Evaluator
	// LoadReport is per-site demand, capacity, and utilization for one
	// demand matrix.
	LoadReport = traffic.LoadReport
	// SiteLoad is one site's load state within a report.
	SiteLoad = traffic.SiteLoad
	// SteeringConfig bounds the steering loop and selects which BGP
	// knobs it may use.
	SteeringConfig = traffic.SteeringConfig
	// Steerer resolves site overload with BGP-level actions (prepending,
	// selective announcement, cross-announcement), restorable via Reset.
	Steerer = traffic.Steerer
	// SteeringResult is the action log plus the initial and final loads.
	SteeringResult = traffic.SteeringResult
	// SteeringAction is one applied BGP knob with its measured effect.
	SteeringAction = traffic.Action
)

// NewDemandModel builds the seeded demand model over the world's retained
// probe groups. A zero cfg.Seed inherits the world's seed, so demand is
// reproducible alongside everything else.
func NewDemandModel(w *World, cfg DemandConfig) *DemandModel {
	if cfg.Seed == 0 {
		cfg.Seed = w.Config.Seed
	}
	return traffic.NewModel(w.Platform, cfg)
}

// NewLoadEvaluator derives site capacities for a deployment against the
// current (baseline) routing state and returns the load evaluator. Build
// it before steering or faults perturb the catchments.
func NewLoadEvaluator(w *World, dep *Deployment, m *DemandModel, cfg CapacityConfig) *LoadEvaluator {
	return traffic.NewEvaluator(w.Engine, dep, m, cfg)
}

// NewSteerer captures a deployment's announcements as the restore point
// and returns a steering engine over the evaluator's deployment.
func NewSteerer(ev *LoadEvaluator, cfg SteeringConfig) *Steerer {
	return traffic.NewSteerer(ev, cfg)
}

// LoadPenaltyMs converts a site utilization into the excess serving
// latency its clients see (zero below the soft-utilization knee).
func LoadPenaltyMs(utilization, softUtil float64) float64 {
	return traffic.PenaltyMs(utilization, softUtil)
}

// Looking glass: route provenance and catchment diffs (extension X4).
// Provenance recording must be on (Config.Provenance, or the engine's
// SetProvenance plus re-announcement) for explanations to carry decision
// records.
type (
	// RouteExplanation is one AS's provenance-justified decision chain to
	// its serving site.
	RouteExplanation = glass.Explanation
	// CatchmentExplanation is one probe group's catchment with the paper's
	// pathology classification.
	CatchmentExplanation = glass.CatchmentExplanation
	// CatchmentPathology is the inefficiency taxonomy (§2.1, §5.4).
	CatchmentPathology = glass.Pathology
	// CatchmentSet is a full captured catchment state, the input to diffs.
	CatchmentSet = glass.CatchmentSet
	// CatchmentDiff is the classified churn between two captures, with a
	// cause attributed to every moved group.
	CatchmentDiff = glass.DiffReport
	// TraceDiff is the structural comparison of two JSONL trace runs.
	TraceDiff = glass.TraceDiff
)

// ExplainRoute returns the decision chain from an AS to its serving site.
func ExplainRoute(w *World, asn uint32, prefix netip.Prefix) (RouteExplanation, error) {
	return glass.Explain(w.Engine, topo.ASN(asn), prefix)
}

// ExplainCatchment explains where a <city,AS> probe group (key "CITY|ASN")
// of a deployment lands and why.
func ExplainCatchment(w *World, dep *Deployment, group string) (CatchmentExplanation, error) {
	return glass.ExplainCatchment(w.Engine, dep, w.Measurer, w.Platform.Retained(), group)
}

// CaptureCatchments snapshots every probe group's catchment of a deployment.
func CaptureCatchments(w *World, dep *Deployment) (CatchmentSet, error) {
	return glass.Capture(w.Engine, dep, w.Measurer, w.Platform.Retained())
}

// DiffCatchments attributes a cause to every group that moved between two
// captures of the same deployment.
func DiffCatchments(before, after CatchmentSet) (CatchmentDiff, error) {
	return glass.Diff(before, after)
}

// DiffTraces compares two JSONL trace runs, refusing incompatible ones.
func DiffTraces(a, b io.Reader) (TraceDiff, error) { return glass.DiffTraces(a, b) }

// The always-on twin (extension X5): a resident simulation that ingests
// dynamics events incrementally, re-binds demand as its virtual clock
// advances, serves consistent-snapshot queries over HTTP, and checkpoints/
// restores its full state bit-identically. `anysim serve` is this server
// behind a CLI.
type (
	// AnycastServer is the resident simulation server.
	AnycastServer = server.Server
	// ServerConfig wires a server to a world and deployment; Restore
	// resumes from a checkpoint.
	ServerConfig = server.Config
	// ServerState is one immutable published snapshot (engine fork, load
	// report, clock) that queries read.
	ServerState = server.State
	// ServerApplyResult reports one ingested event's effect.
	ServerApplyResult = server.ApplyResult
	// ServerCheckpoint is the serialized full state of a server, tagged
	// with the world's identity; incompatible restores are refused.
	ServerCheckpoint = server.Checkpoint
)

// NewServer builds a resident simulation server. The world must have been
// built with provenance recording (Config.Provenance) for the /explain and
// /diff queries.
func NewServer(cfg ServerConfig) (*AnycastServer, error) { return server.New(cfg) }

// ReadServerCheckpoint loads a checkpoint file for ServerConfig.Restore.
func ReadServerCheckpoint(path string) (*ServerCheckpoint, error) {
	return server.ReadCheckpoint(path)
}

// The flight recorder: tick-keyed ring-buffer time series plus the SLO
// rule engine behind `anysim serve`'s /timeseries and /alerts endpoints
// and `anysim report`.
type (
	// TimeSeriesDB records tick-keyed series and evaluates SLO rules;
	// nil is a valid disabled recorder.
	TimeSeriesDB = ts.DB
	// TimeSeriesConfig sizes a recorder and arms its rules.
	TimeSeriesConfig = ts.Config
	// SLORule is one declarative threshold condition over a series.
	SLORule = ts.Rule
	// SLOAlert is one rule's active (pending or firing) alert.
	SLOAlert = ts.Alert
	// SLOTransition records one alert lifecycle change.
	SLOTransition = ts.Transition
)

// NewTimeSeriesDB builds a flight recorder. Attach it to a ScenarioRunner
// (Series/Eval/Model fields) or pass rules via ServerConfig.Series.
func NewTimeSeriesDB(cfg TimeSeriesConfig) *TimeSeriesDB { return ts.New(cfg) }

// ParseSLORule parses one rule line, e.g.
// "slo eu: region.latency.p90{region=EMEA} > 40ms for 3 ticks".
func ParseSLORule(line string) (SLORule, error) { return ts.ParseRule(line) }

// Experiments (every table and figure).
type (
	// ExperimentContext memoizes shared measurement campaigns.
	ExperimentContext = experiments.Context
	// ExperimentReport is one experiment's rendered output plus data.
	ExperimentReport = experiments.Report
	// Experiment is one reproducible table or figure.
	Experiment = experiments.Experiment
)

// NewExperimentContext wraps a world for experiment execution.
func NewExperimentContext(w *World) *ExperimentContext { return experiments.NewContext(w) }

// Experiments lists every table and figure experiment in paper order.
func Experiments() []Experiment { return experiments.All() }

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments(ctx *ExperimentContext) ([]*ExperimentReport, error) {
	return experiments.RunAll(ctx)
}
