package anysim

// One benchmark per table and figure of the paper (DESIGN.md experiment
// index), plus ablation benchmarks for the design choices the simulator
// makes. Each experiment benchmark performs a warm-up run (building the
// world and the shared measurement campaigns) outside the timed region and
// then times regeneration of the table/figure from the memoized campaigns;
// shape metrics are attached via b.ReportMetric so a bench run doubles as a
// quick reproduction report.
//
// Run with: go test -bench=. -benchmem .

import (
	"sync"
	"testing"

	"anysim/internal/atlas"
	"anysim/internal/core"
	"anysim/internal/experiments"
	"anysim/internal/geo"
	"anysim/internal/geodb"
	"anysim/internal/reopt"
	"anysim/internal/stats"
	"anysim/internal/topo"
	"anysim/internal/traffic"
	"anysim/internal/worldgen"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

// benchContext builds the canonical full-scale world once per process.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		var w *worldgen.World
		w, benchErr = worldgen.Default()
		if benchErr == nil {
			benchCtx = experiments.NewContext(w)
		}
	})
	if benchErr != nil {
		b.Fatalf("building world: %v", benchErr)
	}
	return benchCtx
}

// benchExperiment warms the experiment once, then times re-running it.
func benchExperiment(b *testing.B, id string) *experiments.Report {
	b.Helper()
	ctx := benchContext(b)
	var run func(*experiments.Context) (*experiments.Report, error)
	for _, ex := range experiments.All() {
		if ex.ID == id {
			run = ex.Run
		}
	}
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	report, err := run(ctx) // warm-up: campaigns, traces, sweeps
	if err != nil {
		b.Fatalf("%s warm-up: %v", id, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(ctx); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	b.StopTimer()
	return report
}

func BenchmarkTable1SiteCounts(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkTable2DNSMapping(b *testing.B) { benchExperiment(b, "T2") }

func BenchmarkTable3TailLatency(b *testing.B) {
	rep := benchExperiment(b, "T3")
	data := rep.Data.(*experiments.Table3Data)
	b.ReportMetric(data.Regional[geo.NA][90], "regional-NA-p90-ms")
	b.ReportMetric(data.Global[geo.NA][90], "global-NA-p90-ms")
}

func BenchmarkTable4SiteDistance(b *testing.B)   { benchExperiment(b, "T4") }
func BenchmarkTable5CDNSurvey(b *testing.B)      { benchExperiment(b, "T5") }
func BenchmarkTable6Generalization(b *testing.B) { benchExperiment(b, "T6") }

func BenchmarkFigure1Scenario(b *testing.B)    { benchExperiment(b, "F1") }
func BenchmarkFigure2Partitions(b *testing.B)  { benchExperiment(b, "F2") }
func BenchmarkFigure3Geolocation(b *testing.B) { benchExperiment(b, "F3") }
func BenchmarkFigure4CDFs(b *testing.B)        { benchExperiment(b, "F4") }
func BenchmarkFigure5Differences(b *testing.B) { benchExperiment(b, "F5") }

func BenchmarkFigure6Tangled(b *testing.B) {
	rep := benchExperiment(b, "F6")
	data := rep.Data.(*experiments.Figure6Data)
	for _, area := range geo.Areas {
		b.ReportMetric(data.P90ReductionPct[area], "p90-cut-"+area.String()+"-%")
	}
}

func BenchmarkFigure7Scenario(b *testing.B) { benchExperiment(b, "F7") }
func BenchmarkFigure8SameSite(b *testing.B) { benchExperiment(b, "F8") }

func BenchmarkExtensionBaselines(b *testing.B) {
	rep := benchExperiment(b, "X1")
	data := rep.Data.(*experiments.ExtensionsData)
	b.ReportMetric(data.GlobalP90, "global-p90-ms")
	b.ReportMetric(data.DailyCatch.Chosen().P90Ms, "dailycatch-p90-ms")
	b.ReportMetric(data.SiteOptP90, "siteopt-p90-ms")
	b.ReportMetric(data.RegionalP90, "regional-p90-ms")
}

func BenchmarkExtensionTraffic(b *testing.B) {
	rep := benchExperiment(b, "X3")
	data := rep.Data.(*experiments.TrafficData)
	b.ReportMetric(stats.Percentile(data.Regional.Inflations, 90), "regional-p90-inflation-ms")
	b.ReportMetric(stats.Percentile(data.Global.Inflations, 90), "global-p90-inflation-ms")
	b.ReportMetric(float64(data.Regional.OverloadsAfter), "regional-residual-overloads")
	b.ReportMetric(float64(data.Global.OverloadsAfter), "global-residual-overloads")
}

func BenchmarkSection54Causes(b *testing.B) {
	rep := benchExperiment(b, "S54")
	data := rep.Data.(*experiments.Section54Data)
	b.ReportMetric(data.Limited.Fraction(core.CauseASRelationship)*100, "AS-rel-%")
	b.ReportMetric(data.Limited.Fraction(core.CausePeeringType)*100, "peering-type-%")
}

// --- Ablation benchmarks (DESIGN.md §4) ---

// BenchmarkAblationECS varies the share of probes behind ECS-speaking
// public resolvers and reports the wrong-region mapping rate: ECS adoption
// is what keeps Local-DNS mapping close to Authoritative-DNS mapping.
func BenchmarkAblationECS(b *testing.B) {
	for _, tc := range []struct {
		name        string
		isp, ecsPub float64
	}{
		{"NoECS", 0.80, 0.0001},
		{"Default", 0.80, 0.16},
		{"AllPublicECS", 0.0001, 0.9999},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var wrong float64
			for i := 0; i < b.N; i++ {
				w, err := worldgen.New(worldgen.Config{
					Seed:  51,
					Scale: 0.05,
					Topo:  smallTopo(),
					Population: atlas.PopulationConfig{
						PISPResolver: tc.isp,
						PPublicECS:   tc.ecsPub,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				res := core.RunCampaign(w.Measurer, w.Auth, w.Imperva.IM6, worldgen.RepIM6,
					w.Platform.Retained(), core.CampaignConfig{Modes: []atlas.DNSMode{atlas.LDNS}})
				eff := core.AnalyzeDNSMapping(res, atlas.LDNS)
				wrong = 0
				var groups float64
				for _, area := range geo.Areas {
					wrong += eff.Fraction(area, core.MappingWrongRegion) * float64(eff.Groups[area])
					groups += float64(eff.Groups[area])
				}
				wrong /= groups
			}
			b.ReportMetric(wrong*100, "xRegion-%")
		})
	}
}

// BenchmarkAblationGeoDBError varies the operator database's error level
// and reports the wrong-region rate under Authoritative DNS, isolating
// IP-geolocation error as a cause of mapping inefficiency.
func BenchmarkAblationGeoDBError(b *testing.B) {
	// The operator database is built inside worldgen; the ablation
	// emulates better/worse databases by re-registering the hostname with
	// a mapper over a database built at the requested error level.
	for _, tc := range []struct {
		name             string
		country, transit float64
	}{
		{"Perfect", 0, 0},
		{"Default", 0.010, 0.15},
		{"Sloppy", 0.05, 0.50},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var wrong float64
			for i := 0; i < b.N; i++ {
				w, err := worldgen.New(worldgen.Config{Seed: 51, Scale: 0.05, Topo: smallTopo()})
				if err != nil {
					b.Fatal(err)
				}
				db := buildOperatorDB(w, tc.country, tc.transit)
				host := "ablation.example"
				if err := w.Auth.Register(host, w.Imperva.IM6.Mapper(db)); err != nil {
					b.Fatal(err)
				}
				res := core.RunCampaign(w.Measurer, w.Auth, w.Imperva.IM6, host,
					w.Platform.Retained(), core.CampaignConfig{Modes: []atlas.DNSMode{atlas.ADNS}})
				eff := core.AnalyzeDNSMapping(res, atlas.ADNS)
				wrong = 0
				var groups float64
				for _, area := range geo.Areas {
					wrong += eff.Fraction(area, core.MappingWrongRegion) * float64(eff.Groups[area])
					groups += float64(eff.Groups[area])
				}
				wrong /= groups
			}
			b.ReportMetric(wrong*100, "xRegion-%")
		})
	}
}

// BenchmarkAblationReOptK evaluates each region count of the ReOpt sweep,
// reporting mean client latency: the paper finds k=5 optimal on Tangled.
func BenchmarkAblationReOptK(b *testing.B) {
	ctx := benchContext(b)
	sweep := ctx.Sweep()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := reopt.Run(ctx.World.Engine, ctx.World.Measurer, ctx.World.Tangled,
			ctx.World.Platform.Retained(), reopt.Config{Seed: ctx.World.Config.Seed})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, cand := range sweep.Candidates {
		b.ReportMetric(cand.MeanLatencyMs, "mean-ms-k"+string(rune('0'+cand.K)))
	}
}

// BenchmarkDemandMatrix times materializing a full day of demand matrices
// from the seeded model — the inner product every load evaluation starts
// from.
func BenchmarkDemandMatrix(b *testing.B) {
	ctx := benchContext(b)
	model := traffic.NewModel(ctx.World.Platform, traffic.DemandConfig{Seed: ctx.World.Config.Seed})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mats := model.Matrices()
		if len(mats) != model.Buckets() {
			b.Fatalf("got %d matrices", len(mats))
		}
	}
}

// BenchmarkTrafficSteering times one full steering resolution of the X3
// flash crowd (LatAm demand scaled up at its peak bucket) on the regional
// deployment, including the restore. Each iteration replays the same
// deterministic search, so this tracks the cost of the trial-and-rollback
// loop over the incremental routing solver.
func BenchmarkTrafficSteering(b *testing.B) {
	ev, flash := benchFlashSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	var resolved bool
	for i := 0; i < b.N; i++ {
		st := traffic.NewSteerer(ev, traffic.SteeringConfig{
			MaxActions: 64, AllowSelective: true, AllowCrossAnnounce: true,
		})
		res, err := st.Resolve(flash)
		if err != nil {
			b.Fatal(err)
		}
		resolved = len(res.Final.Overloads()) == 0
		if err := st.Reset(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !resolved {
		b.Fatal("steering left overloads unresolved")
	}
}

// benchFlashSetup builds the X3 flash-crowd workload: evaluator over the
// default world's regional deployment plus the LatAm peak-bucket matrix
// scaled x2.8.
func benchFlashSetup(b *testing.B) (*traffic.Evaluator, traffic.Matrix) {
	b.Helper()
	ctx := benchContext(b)
	w := ctx.World
	model := traffic.NewModel(w.Platform, traffic.DemandConfig{Seed: w.Config.Seed})
	ev := traffic.NewEvaluator(w.Engine, w.Imperva.IM6, model, traffic.CapacityConfig{})
	peak, peakRate := 0, -1.0
	for bu := 0; bu < model.Buckets(); bu++ {
		mat := model.Matrix(bu)
		rate := 0.0
		for _, g := range model.Groups {
			if g.Area == geo.LatAm {
				rate += mat.Rates[g.Key]
			}
		}
		if rate > peakRate {
			peak, peakRate = bu, rate
		}
	}
	return ev, model.FlashCrowd(model.Matrix(peak), geo.LatAm, 2.8)
}

// BenchmarkSteeringRound isolates one round of the steering loop — generate
// candidates, trial them concurrently on engine forks, commit the winner —
// by resolving with a single-action budget and restoring. This is the unit
// the Workers pool parallelizes.
func BenchmarkSteeringRound(b *testing.B) {
	ev, flash := benchFlashSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := traffic.NewSteerer(ev, traffic.SteeringConfig{
			MaxActions: 1, AllowSelective: true, AllowCrossAnnounce: true,
		})
		res, err := st.Resolve(flash)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Actions) == 0 {
			b.Fatal("round committed no action")
		}
		if err := st.Reset(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldBuild times constructing the full-scale paper world from
// scratch: topology, CDNs, routing convergence for 15 prefixes, address
// plan, probes, and DNS.
func BenchmarkWorldBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := worldgen.Default(); err != nil {
			b.Fatal(err)
		}
	}
}

func smallTopo() topo.GenConfig {
	return topo.GenConfig{NumTier1: 5, NumTier2: 45, NumStub: 420, NumIXP: 14}
}

// buildOperatorDB builds an operator geolocation database over the world's
// ground truth at the requested error level.
func buildOperatorDB(w *worldgen.World, countryWrong, transitHome float64) *geodb.DB {
	return geodb.Build("ablation-db", w.Truth, geodb.ErrorModel{
		PCityWrong:    0.06,
		PCountryWrong: countryWrong,
		PTransitHome:  transitHome,
		PMiss:         0.01,
	}, 4242)
}
