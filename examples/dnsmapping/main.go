// DNS mapping: the paper's §5.1 study of how well a regional anycast CDN's
// DNS maps clients to their lowest-latency regional IP. Measures one
// hostname of each studied CDN under both the Local-DNS and
// Authoritative-DNS configurations and prints the Table-2 classification:
// efficient (ΔRTT < 5 ms), sub-optimal-but-right-region, and wrong-region
// mappings per area — showing how ECS, geolocation error, and rigid region
// borders each contribute.
//
// Run with: go run ./examples/dnsmapping
package main

import (
	"fmt"
	"log"

	"anysim"
	"anysim/internal/core"
	"anysim/internal/geo"
)

func main() {
	world, err := anysim.SmallWorld(5)
	if err != nil {
		log.Fatal(err)
	}
	probes := world.Platform.Retained()

	campaigns := []struct {
		name string
		dep  *anysim.Deployment
		host string
	}{
		{"Edgio-3", world.Edgio.EG3, anysim.RepresentativeEdgio3},
		{"Edgio-4", world.Edgio.EG4, anysim.RepresentativeEdgio4},
		{"Imperva-6", world.Imperva.IM6, anysim.RepresentativeImperva6},
	}

	for _, c := range campaigns {
		res := anysim.RunCampaign(world, c.dep, c.host, probes)
		fmt.Printf("%s (%s):\n", c.name, c.host)
		for _, mode := range []anysim.DNSMode{anysim.LDNS, anysim.ADNS} {
			eff := anysim.AnalyzeDNSMapping(res, mode)
			fmt.Printf("  %s:\n", mode)
			for _, area := range geo.Areas {
				fmt.Printf("    %-6s dRTT<5ms %5.1f%%   okRegion,dRTT>=5ms %5.1f%%   xRegion %5.1f%%   (%d groups)\n",
					area,
					eff.Fraction(area, core.MappingEfficient)*100,
					eff.Fraction(area, core.MappingSubOptimalRegion)*100,
					eff.Fraction(area, core.MappingWrongRegion)*100,
					eff.Groups[area])
			}
		}

		// Drill into one inefficiently-mapped probe, like the paper's
		// Russian-probe example (§5.1): show which VIP DNS returned and
		// which one would have been fastest.
		for _, g := range core.GroupMeasurements(res) {
			if core.ClassifyGroup(g, anysim.LDNS, res) != core.MappingSubOptimalRegion {
				continue
			}
			m := g.Members[0]
			returned := m.Returned[anysim.LDNS]
			returnedRTT, _ := m.ReturnedRTT(anysim.LDNS)
			var bestVIP string
			best := -1.0
			for vip, rtt := range m.RTT {
				if best < 0 || rtt < best {
					best = rtt
					if r, ok := c.dep.RegionOfVIP(vip); ok {
						bestVIP = r.Name
					}
				}
			}
			region, _ := c.dep.RegionOfVIP(returned)
			fmt.Printf("  example: probe group %s gets the %q VIP (%.1f ms) but region %q would cost %.1f ms\n",
				g.Key, region.Name, returnedRTT, bestVIP, best)
			break
		}
		fmt.Println()
	}
}
