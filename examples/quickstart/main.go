// Quickstart: build a small simulated Internet, deploy a three-site content
// network under both global and regional anycast, and see why the paper
// prefers regional: the same client can be routed across an ocean by global
// anycast's policy routing while the regional prefix pins it to a nearby
// site.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"anysim"
)

func main() {
	// A reduced-scale world: ~1,300 ASes, ~1,100 probes, and the paper's
	// content networks (Edgio, Imperva, Tangled) already deployed.
	world, err := anysim.SmallWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d ASes, %d probes in %d <city,AS> groups\n\n",
		world.Topo.NumASes(), len(world.Platform.Retained()), len(world.Platform.GroupKeys()))

	// Imperva-6 is the paper's six-region deployment; Imperva-NS is the
	// same operator's global anycast network. Measure one customer
	// hostname against both.
	probes := world.Platform.Retained()
	regional := anysim.RunCampaign(world, world.Imperva.IM6, anysim.RepresentativeImperva6, probes)

	// The global network has no customer hostname of its own; register a
	// synthetic one so the same machinery applies.
	if err := world.Auth.Register("global.example", world.Imperva.NS.Mapper(world.OperatorDB)); err != nil {
		log.Fatal(err)
	}
	global := anysim.RunCampaign(world, world.Imperva.NS, "global.example", probes)

	// Pair the two campaigns with the paper's §5.3 overlap filtering and
	// print the headline: tail latency per area.
	cmp, err := anysim.CompareRegionalGlobal(world, regional, global, anysim.LDNS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe groups retained after site/peer overlap filtering: %.1f%%\n\n",
		cmp.Filter.RetainedFraction()*100)

	fmt.Println("90th-percentile client RTT, regional vs global anycast:")
	perArea := map[anysim.Area][]float64{}
	perAreaG := map[anysim.Area][]float64{}
	for _, pair := range cmp.Pairs {
		perArea[pair.Area] = append(perArea[pair.Area], pair.RTTReg)
		perAreaG[pair.Area] = append(perAreaG[pair.Area], pair.RTTGlob)
	}
	for _, area := range []anysim.Area{anysim.APAC, anysim.EMEA, anysim.NA, anysim.LatAm} {
		fmt.Printf("  %-6s regional %6.1f ms   global %6.1f ms\n",
			area, percentile(perArea[area], 90), percentile(perAreaG[area], 90))
	}

	// Show one concrete catchment decision: where one probe's traffic
	// lands under each configuration.
	p := probes[0]
	fmt.Printf("\nexample probe: %s (%s), AS%d\n", p.City, p.Country, p.ASN)
	for _, tc := range []struct {
		label string
		host  string
	}{
		{"regional", anysim.RepresentativeImperva6},
		{"global  ", "global.example"},
	} {
		addr, ok := world.Measurer.ResolveHost(world.Auth, tc.host, p, anysim.LDNS)
		if !ok {
			continue
		}
		rtt, _ := world.Measurer.Ping(p, addr)
		tr, _ := world.Measurer.Traceroute(p, addr)
		fmt.Printf("  %s DNS says %v -> site %q in %.1f ms over AS path %v\n",
			tc.label, addr, tr.Fwd.Site, rtt, tr.Fwd.Path)
	}
}

// percentile is a tiny local helper so the example stays self-contained.
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
