// CDN survey: the paper's §4 deployment study end to end. Starting from
// nothing but a hostname list and DNS access, discover which hostnames are
// served by regional anycast platforms (by counting distinct A records over
// a worldwide ECS sweep), then enumerate the CDN sites announcing each
// regional prefix with the Appendix-B p-hop geolocation pipeline, and print
// the resulting Table-1-style site inventory.
//
// Run with: go run ./examples/cdnsurvey
package main

import (
	"fmt"
	"log"
	"sort"

	"anysim"
	"anysim/internal/cdnfinder"
	"anysim/internal/geo"
	"anysim/internal/sitemap"
)

func main() {
	world, err := anysim.SmallWorld(7)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 (§4.1): the redirection-method survey of the top CDNs.
	fmt.Println("top-CDN redirection survey (Table 5):")
	for _, e := range cdnfinder.Table5() {
		fmt.Printf("  %-24s %s\n", e.Provider, e.Method)
	}
	fmt.Printf("regional anycast providers: %v\n\n", cdnfinder.RegionalAnycastProviders())

	// Step 2 (§4.2): resolve every customer hostname from a worldwide set
	// of client /24s via ECS and bucket hostnames by how many distinct
	// addresses they return.
	clients := cdnfinder.ClientPrefixes(world.Platform.Retained())
	census := cdnfinder.RunCensus(world.Auth, world.Hostnames.All(), clients)
	sets := census.SetsByDistinctCount()
	counts := make([]int, 0, len(sets))
	for n := range sets {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	fmt.Printf("hostname census over %d client prefixes:\n", len(clients))
	for _, n := range counts {
		fmt.Printf("  %3d hostnames resolve to %d distinct address(es)\n", len(sets[n]), n)
	}
	fmt.Printf("regional-anycast candidate hostnames: %d\n\n", len(census.RegionalHostnames()))

	// Step 3 (§4.4): traceroute to each regional VIP of the 6-IP set's
	// deployment and enumerate the announcing sites from penultimate hops.
	dep := world.Imperva.IM6
	var traces []*anysim.Trace
	for _, p := range world.Platform.Retained() {
		for _, vip := range dep.VIPs() {
			if tr, ok := world.Measurer.Traceroute(p, vip); ok && tr.Reached {
				traces = append(traces, tr)
			}
		}
	}
	enum := anysim.EnumerateSites(world, dep.Name, traces, world.Imperva.Published)

	fmt.Printf("site enumeration for %s from %d traceroutes:\n", dep.Name, len(traces))
	for _, tech := range sitemap.Techniques {
		fmt.Printf("  %-20s %5.1f%% of p-hops, %5.1f%% of traces\n",
			tech, enum.PHopFraction(tech)*100, enum.TraceFraction(tech)*100)
	}
	byArea := enum.SiteCountsByArea()
	fmt.Printf("discovered sites by area (Table 1 row):")
	for _, area := range geo.Areas {
		fmt.Printf("  %s=%d", area, byArea[area])
	}
	fmt.Printf("  (total %d of %d published)\n", len(enum.SiteList()), len(world.Imperva.Published))
}
