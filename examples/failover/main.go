// Failover: inject faults into a running anycast deployment and watch the
// routing system heal around them. The paper evaluates regional anycast
// statically; this walkthrough asks the operational follow-up — when a site
// or transit link dies, how far does the damage spread, and what latency do
// the survivors pay? Every fault is repaired, and because the simulator's
// incremental reconvergence is exact, the final state is bit-identical to
// the initial one.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"sort"

	"anysim"
)

func main() {
	world, err := anysim.SmallWorld(42)
	if err != nil {
		log.Fatal(err)
	}
	runner := anysim.NewScenarioRunner(world, world.Imperva.IM6)
	fmt.Printf("deployment %s: %d sites over %d regional prefixes\n\n",
		world.Imperva.IM6.Name, len(world.Imperva.IM6.Sites), len(runner.Prefixes()))

	// A hand-written schedule in the scenario DSL: lose the Frankfurt
	// site, then flap a transit link, then restore everything.
	link := pickTransitLink(world)
	text := fmt.Sprintf(`scenario frankfurt-outage
# Frankfurt dies at t=1 and stays dark for five ticks.
at 1 site-down fra
# While it is down, a tier-2 transit link also fails.
at 3 link-down %d %d
at 6 site-up fra
at 8 link-up %d %d
`, link.a, link.b, link.a, link.b)
	scenario, err := anysim.ParseScenario(text)
	if err != nil {
		log.Fatal(err)
	}

	before := runner.ProbeViews()
	steps, err := runner.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("event-by-event blast radius (share of served <prefix, AS> pairs rerouted):")
	for _, st := range steps {
		fmt.Printf("  %-24s %6.2f%%  (%d moved, %d lost, %d gained)\n",
			st.Event, 100*st.Churn.ChangedFraction(),
			st.Churn.Moved, st.Churn.Lost, st.Churn.Gained)
	}

	// The schedule repairs every fault, so service is exactly restored.
	after := runner.ProbeViews()
	changed, total := runner.GroupChurn(before, after)
	fmt.Printf("\nafter repairs: %d of %d probe groups still displaced\n", changed, total)

	// Replay just the outage to look at the failover penalty: probes that
	// kept service but were pushed to a farther site.
	if err := runner.Apply(anysim.FaultEvent{Kind: steps[0].Event.Kind, Site: steps[0].Event.Site}); err != nil {
		log.Fatal(err)
	}
	during := runner.ProbeViews()
	pens := anysim.FailoverPenalties(before, during)
	sort.Float64s(pens)
	if len(pens) > 0 {
		fmt.Printf("\nduring the Frankfurt outage, %d probes failed over to another site:\n", len(pens))
		fmt.Printf("  median RTT penalty %.1f ms, worst %.1f ms\n",
			pens[len(pens)/2], pens[len(pens)-1])
	}
	if err := runner.Apply(anysim.FaultEvent{Kind: steps[2].Event.Kind, Site: steps[2].Event.Site}); err != nil {
		log.Fatal(err)
	}

	// A seeded generator produces reproducible mixed-fault schedules for
	// larger studies; the same seed always yields the same scenario.
	gen, err := anysim.GenerateScenario(world, world.Imperva.IM6, anysim.ScenarioGenConfig{Seed: 1, Faults: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\na generated schedule (seed 1):\n%s", gen)
}

// pickTransitLink returns the first tier-2 -> tier-1 customer link, a
// deterministic stand-in for "some transit link in the core".
func pickTransitLink(world *anysim.World) struct{ a, b uint32 } {
	for _, l := range world.Topo.Links() {
		if l.Type.String() != "c2p" {
			continue
		}
		return struct{ a, b uint32 }{uint32(l.A), uint32(l.B)}
	}
	log.Fatal("no transit link in world")
	return struct{ a, b uint32 }{}
}
