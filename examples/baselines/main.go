// Baselines: the paper's §2.2 positioning, quantified. Runs the two
// alternative global anycast improvement proposals the paper discusses —
// DailyCatch (pick the better of a transit-only and an all-peers
// announcement configuration) and an AnyOpt-style site-subset optimizer —
// on the simulated Tangled testbed, then compares both against latency-based
// regional anycast (ReOpt). The paper argues regional anycast is the most
// promising approach because it bounds catchments geographically without
// per-deployment BGP experiments; this example measures the gap.
//
// Run with: go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"strings"

	"anysim"
	"anysim/internal/dailycatch"
	"anysim/internal/siteopt"
	"anysim/internal/stats"
)

func main() {
	world, err := anysim.SmallWorld(9)
	if err != nil {
		log.Fatal(err)
	}
	probes := world.Platform.Retained()
	tangled := world.Tangled.Global

	// 1. DailyCatch: measure transit-only vs all-peers, keep the winner.
	dc, err := dailycatch.Run(world.Engine, world.Measurer, tangled, probes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DailyCatch (McQuistin et al., IMC'19):")
	fmt.Printf("  transit-only  p90 %6.1f ms\n", dc.Transit.P90Ms)
	fmt.Printf("  all-peers     p90 %6.1f ms\n", dc.Peers.P90Ms)
	fmt.Printf("  winner: %s\n\n", dc.Winner)

	// 2. AnyOpt-style greedy site-subset optimisation.
	so, err := siteopt.Optimize(world.Engine, world.Measurer, tangled, probes, siteopt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AnyOpt-style site-subset optimizer (Zhang et al., SIGCOMM'21):")
	fmt.Printf("  best subset: %s (%d of %d sites)\n",
		strings.Join(so.Best, " "), len(so.Best), len(tangled.Sites))
	fmt.Printf("  mean latency: %.1f ms after %d BGP experiments\n\n", so.BestMeanMs, so.Announcements)

	// Restore the default global configuration before the regional run.
	if err := tangled.Announce(world.Engine); err != nil {
		log.Fatal(err)
	}

	// 3. ReOpt latency-based regional anycast (§6).
	sweep, err := anysim.RunReOpt(world, 9)
	if err != nil {
		log.Fatal(err)
	}
	best := sweep.Best
	var regional []float64
	for _, p := range probes {
		region, ok := best.Deployment.RegionForCountry(p.Country)
		if !ok {
			continue
		}
		if fwd, ok := world.Engine.Lookup(region.Prefix, p.ASN, p.City); ok {
			regional = append(regional, world.Measurer.RTT(p, fwd))
		}
	}
	fmt.Printf("ReOpt regional anycast (§6, k=%d): p90 %.1f ms\n\n", best.K, stats.Percentile(regional, 90))

	fmt.Println("summary (pooled p90):")
	fmt.Printf("  DailyCatch winner     %6.1f ms\n", dc.Chosen().P90Ms)
	fmt.Printf("  ReOpt regional        %6.1f ms\n", stats.Percentile(regional, 90))
	fmt.Println("\nregional anycast bounds every client's catchment geographically;")
	fmt.Println("the global proposals can only choose among globally-exposed configurations.")
}
