// Tangled: the paper's §6 "potentials" study. Run ReOpt — the latency-based
// region partitioner — on the simulated Tangled testbed, then compare the
// winning regional configuration against global anycast in every area,
// reproducing the Figure-6 result that latency-based regional anycast beats
// global anycast across the board.
//
// Run with: go run ./examples/tangled
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"anysim"
	"anysim/internal/geo"
	"anysim/internal/stats"
)

func main() {
	world, err := anysim.SmallWorld(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tangled testbed: %d sites at %s\n\n",
		len(world.Tangled.Cities), strings.Join(world.Tangled.Cities, " "))

	sweep, err := anysim.RunReOpt(world, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("region-count sweep (mean client latency):")
	for _, cand := range sweep.Candidates {
		marker := "  "
		if cand == sweep.Best {
			marker = "->"
		}
		fmt.Printf(" %s k=%d: %.1f ms\n", marker, cand.K, cand.MeanLatencyMs)
	}

	best := sweep.Best
	fmt.Printf("\nReOpt partition (k=%d):\n", best.K)
	names := make([]string, 0, len(best.Partition))
	for rn := range best.Partition {
		names = append(names, rn)
	}
	sort.Strings(names)
	for _, rn := range names {
		fmt.Printf("  %-8s %s\n", rn, strings.Join(best.Partition[rn], " "))
	}

	// Figure 6c: regional with country-level DNS mapping vs global.
	globVIP := world.Tangled.Global.VIPs()[0]
	regional := map[geo.Area][]float64{}
	global := map[geo.Area][]float64{}
	for _, p := range world.Platform.Retained() {
		if region, ok := best.Deployment.RegionForCountry(p.Country); ok {
			if fwd, ok := world.Engine.Lookup(region.Prefix, p.ASN, p.City); ok {
				regional[p.Area()] = append(regional[p.Area()], world.Measurer.RTT(p, fwd))
			}
		}
		if rtt, ok := world.Measurer.Ping(p, globVIP); ok {
			global[p.Area()] = append(global[p.Area()], rtt)
		}
	}
	fmt.Println("\nregional vs global anycast (Figure 6c):")
	for _, area := range geo.Areas {
		r90 := stats.Percentile(regional[area], 90)
		g90 := stats.Percentile(global[area], 90)
		cut := (g90 - r90) / g90 * 100
		fmt.Printf("  %-6s p90 %6.1f ms regional vs %6.1f ms global  (%.1f%% reduction)\n",
			area, r90, g90, cut)
	}
}
