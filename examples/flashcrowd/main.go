// Flashcrowd: overload an anycast deployment with a regional demand spike
// and steer the load back under capacity with BGP-level knobs. The paper
// argues (§6) that regional anycast gives operators surgical control —
// prepending inside one region, announcing a regional prefix from spare
// sites elsewhere — where a global deployment can only prepend its single
// shared prefix and hope the catchments land well. This walkthrough builds
// the seeded demand model, applies the same flash crowd to Imperva-6
// (regional) and Imperva-NS (global), and compares what steering costs the
// clients in each case. Everything is restored afterwards: steering is as
// reversible as any fault.
//
// Run with: go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"
	"sort"

	"anysim"
)

func main() {
	world, err := anysim.SmallWorld(42)
	if err != nil {
		log.Fatal(err)
	}

	// The demand model is seeded from the world: Zipf-skewed group
	// popularity, area shares following Internet users rather than probe
	// density, and a diurnal cycle keyed to each group's longitude.
	model := anysim.NewDemandModel(world, anysim.DemandConfig{})
	fmt.Printf("demand model: %d probe groups, %.0f req/s day-mean, %d buckets\n",
		len(model.Groups), model.TotalBase(), model.Buckets())

	// Capacities are derived from the baseline routing state, so build
	// both evaluators before touching any announcements.
	evRegional := anysim.NewLoadEvaluator(world, world.Imperva.IM6, model, anysim.CapacityConfig{})
	evGlobal := anysim.NewLoadEvaluator(world, world.Imperva.NS, model, anysim.CapacityConfig{})

	// The crowd hits Latin America at its local evening peak: big enough
	// to overload the area's sites, regional enough that spare capacity
	// exists elsewhere — the situation steering is for.
	bucket := peakBucket(model, anysim.LatAm)
	flash := model.FlashCrowd(model.Matrix(bucket), anysim.LatAm, 2.5)
	fmt.Printf("flash crowd: LatAm demand x2.5 at bucket %d\n\n", bucket)

	for _, tc := range []struct {
		name string
		ev   *anysim.LoadEvaluator
		cfg  anysim.SteeringConfig
	}{
		// The regional deployment gets the full knob set; the global one
		// shares a single prefix, so prepending is its only lever. Both
		// get the same action budget.
		{"regional (Imperva-6)", evRegional,
			anysim.SteeringConfig{MaxActions: 64, AllowSelective: true, AllowCrossAnnounce: true}},
		{"global (Imperva-NS)", evGlobal,
			anysim.SteeringConfig{MaxActions: 64}},
	} {
		baseline := tc.ev.Evaluate(model.Matrix(bucket))
		steerer := anysim.NewSteerer(tc.ev, tc.cfg)
		res, err := steerer.Resolve(flash)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s:\n", tc.name)
		fmt.Printf("  overloaded sites %d -> %d, max utilization %.2f -> %.2f\n",
			len(res.Initial.Overloads()), len(res.Final.Overloads()),
			res.Initial.MaxUtilization(), res.Final.MaxUtilization())
		fmt.Printf("  %d steering actions:\n", len(res.Actions))
		for i, a := range res.Actions {
			if i == 6 {
				fmt.Printf("    … and %d more\n", len(res.Actions)-i)
				break
			}
			fmt.Printf("    %s (util %.2f -> %.2f, shed %.0f req/s at +%.1f ms)\n",
				a, a.UtilBefore, a.UtilAfter, a.ShedRate, a.RTTCostMs)
		}

		// What did steering cost the clients? Compare each group's
		// effective RTT (propagation + load penalty) against the
		// pre-crowd baseline.
		soft := tc.ev.Config().SoftUtil
		var p50, p90 float64
		var inflations []float64
		for key := range baseline.Assignments {
			d := res.Final.EffectiveRTTMs(key, soft) - baseline.EffectiveRTTMs(key, soft)
			inflations = append(inflations, d)
		}
		p50, p90 = percentiles(inflations)
		fmt.Printf("  client RTT inflation vs no-crowd baseline: p50 %+.1f ms, p90 %+.1f ms, worst %+.1f ms\n",
			p50, p90, inflations[len(inflations)-1])

		// Steering is fully reversible: Reset restores the captured
		// announcements and the catchments converge back bit-identically.
		if err := steerer.Reset(); err != nil {
			log.Fatal(err)
		}
		restored := tc.ev.Evaluate(model.Matrix(bucket))
		fmt.Printf("  after reset: max utilization back to %.2f\n\n", restored.MaxUtilization())
	}
}

// peakBucket returns the bucket where an area's aggregate demand peaks.
func peakBucket(m *anysim.DemandModel, area anysim.Area) int {
	best, bestRate := 0, -1.0
	for b := 0; b < m.Buckets(); b++ {
		mat := m.Matrix(b)
		rate := 0.0
		for _, g := range m.Groups {
			if g.Area == area {
				rate += mat.Rates[g.Key]
			}
		}
		if rate > bestRate {
			best, bestRate = b, rate
		}
	}
	return best
}

// percentiles returns the p50 and p90 of a sample (sorted in place).
func percentiles(xs []float64) (p50, p90 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sort.Float64s(xs)
	return xs[len(xs)*50/100], xs[len(xs)*90/100]
}
