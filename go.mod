module anysim

go 1.22
